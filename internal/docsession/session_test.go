package docsession

import (
	"context"
	"strings"
	"testing"

	"xic/internal/constraint"
	"xic/internal/doccheck"
	"xic/internal/dtd"
	"xic/internal/xmltree"
)

const libDTD = `
<!ELEMENT lib (grp*, ref*)>
<!ELEMENT grp (item*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST grp id CDATA #REQUIRED>
<!ATTLIST grp tag CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
`

const libSigma = "grp.id -> grp\nref.to => grp.id"

const libDoc = `<lib><grp id="a" tag="x"><item>one</item></grp><grp id="b" tag="y"/><ref to="a"/></lib>`

// openLib opens a session over doc under the lib DTD and constraint set.
func openLib(t *testing.T, dtdSrc, consSrc, doc string) *Session {
	t.Helper()
	s, err := open(dtdSrc, consSrc, doc)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func open(dtdSrc, consSrc, doc string) (*Session, error) {
	d, err := dtd.Parse(dtdSrc)
	if err != nil {
		return nil, err
	}
	var sigma []constraint.Constraint
	if consSrc != "" {
		if sigma, err = constraint.Parse(consSrc); err != nil {
			return nil, err
		}
		if err := constraint.ValidateSet(d, sigma); err != nil {
			return nil, err
		}
	}
	v := xmltree.NewValidator(d)
	v.CompileAll()
	ck := doccheck.New(d, v, sigma)
	return Open(context.Background(), ck, v, strings.NewReader(doc))
}

// revalidate runs the session's current document through a fresh full
// validation pass and fails the test if it is not clean: the session
// invariant.
func revalidate(t *testing.T, s *Session, dtdSrc, consSrc string) {
	t.Helper()
	d, _ := dtd.Parse(dtdSrc)
	sigma, _ := constraint.Parse(consSrc)
	v := xmltree.NewValidator(d)
	v.CompileAll()
	ck := doccheck.New(d, v, sigma)
	rep, err := ck.Run(context.Background(), strings.NewReader(s.Document()))
	if err != nil {
		t.Fatalf("revalidate: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("session document fails full validation:\n%s\nviolations: %v", s.Document(), rep.Violations)
	}
}

func TestOpenRejectsInvalidDocument(t *testing.T) {
	_, err := open(libDTD, libSigma, `<lib><grp id="a" tag="x"/><grp id="a" tag="y"/></lib>`)
	ide, ok := err.(*InvalidDocumentError)
	if !ok {
		t.Fatalf("got %v, want *InvalidDocumentError", err)
	}
	if len(ide.Report.Violations) == 0 {
		t.Fatal("invalid-document error carries no violations")
	}
}

func TestOpenRejectsMalformedDocument(t *testing.T) {
	if _, err := open(libDTD, libSigma, `<lib><grp`); err == nil {
		t.Fatal("malformed document accepted")
	}
}

func TestSetAttrAccept(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(SetAttr("lib/grp[1]", "id", "c"))
	if res.Rejected != nil {
		t.Fatalf("rejected: %+v", res.Rejected)
	}
	if res.Applied != 1 || res.Elements != 5 {
		t.Fatalf("applied=%d elements=%d", res.Applied, res.Elements)
	}
	if !strings.Contains(s.Document(), `id="c"`) {
		t.Fatalf("document not updated:\n%s", s.Document())
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestSetAttrDuplicateKeyRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	before := s.Document()
	res := s.Apply(SetAttr("lib/grp[1]", "id", "a"))
	rej := res.Rejected
	if rej == nil {
		t.Fatal("duplicate key accepted")
	}
	if len(rej.Report.Violations) == 0 || !strings.Contains(rej.Report.Violations[0].Msg, "duplicate key") {
		t.Fatalf("violations: %+v", rej.Report.Violations)
	}
	if rej.Repair == nil || rej.Repair.Op == nil {
		t.Fatalf("no repair op for duplicate unary key: %+v", rej.Repair)
	}
	if s.Document() != before {
		t.Fatal("rejected edit changed the document")
	}
	// The hinted counter-edit must succeed in the rejected one's place.
	if res := s.Apply(*rej.Repair.Op); res.Rejected != nil {
		t.Fatalf("repair op rejected: %+v", res.Rejected)
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestSetAttrDanglingRefRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(SetAttr("lib/ref[0]", "to", "nope"))
	rej := res.Rejected
	if rej == nil {
		t.Fatal("dangling reference accepted")
	}
	if rej.Repair == nil || rej.Repair.Op == nil {
		t.Fatalf("no repair op for dangling unary reference: %+v", rej.Repair)
	}
	if rej.Repair.Op.Value != "a" && rej.Repair.Op.Value != "b" {
		t.Fatalf("repair points at %q, want an existing grp id", rej.Repair.Op.Value)
	}
	if res := s.Apply(*rej.Repair.Op); res.Rejected != nil {
		t.Fatalf("repair op rejected: %+v", res.Rejected)
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestSetAttrBreakingParentSideRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	// grp[0] carries id="a", referenced by ref[0]: renaming it strands
	// the reference.
	res := s.Apply(SetAttr("lib/grp[0]", "id", "z"))
	if res.Rejected == nil {
		t.Fatal("stranding edit accepted")
	}
	if res.Rejected.Repair == nil {
		t.Fatal("no repair hint")
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestSetAttrStructuralRejections(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	for _, op := range []EditOp{
		SetAttr("lib/grp[7]", "id", "z"),
		SetAttr("nosuch", "id", "z"),
		SetAttr("lib/grp[0]", "bogus", "z"),
	} {
		if res := s.Apply(op); res.Rejected == nil {
			t.Fatalf("%+v accepted", op)
		}
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestInsertAcceptAndDuplicate(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(InsertSubtree("lib", 2, `<grp id="d" tag="z"><item>new</item></grp>`))
	if res.Rejected != nil {
		t.Fatalf("insert rejected: %+v", res.Rejected)
	}
	if res.Elements != 7 {
		t.Fatalf("elements=%d, want 7", res.Elements)
	}
	revalidate(t, s, libDTD, libSigma)

	res = s.Apply(InsertSubtree("lib", 2, `<grp id="d" tag="z"/>`))
	if res.Rejected == nil {
		t.Fatal("duplicate-key insert accepted")
	}
	if res.Rejected.Repair == nil || !strings.Contains(res.Rejected.Repair.Msg, "unused") {
		t.Fatalf("repair: %+v", res.Rejected.Repair)
	}
	if s.Elements() != 7 {
		t.Fatalf("rejected insert changed element count to %d", s.Elements())
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestInsertDanglingRefRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(InsertSubtree("lib", 3, `<ref to="zz"/>`))
	if res.Rejected == nil {
		t.Fatal("dangling insert accepted")
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestInsertContentModelRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	// lib is (grp*, ref*): a ref cannot precede the grps.
	res := s.Apply(InsertSubtree("lib", 0, `<ref to="a"/>`))
	if res.Rejected == nil {
		t.Fatal("content-model-breaking insert accepted")
	}
	if !strings.Contains(res.Rejected.Report.Violations[0].Msg, "content model") {
		t.Fatalf("msg: %q", res.Rejected.Report.Violations[0].Msg)
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestInsertStructuralRejections(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	for _, op := range []EditOp{
		InsertSubtree("lib", 99, `<ref to="a"/>`),
		InsertSubtree("lib", -1, `<ref to="a"/>`),
		InsertSubtree("lib", 0, `<zzz/>`),
		InsertSubtree("lib", 0, `<grp id="q"/>`), // lacks required tag
		InsertSubtree("lib", 0, `not xml`),
		InsertSubtree("lib/grp[9]", 0, `<ref to="a"/>`),
	} {
		if res := s.Apply(op); res.Rejected == nil {
			t.Fatalf("%+v accepted", op)
		}
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestDeleteReferencedRejectedThenCascade(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(DeleteSubtree("lib/grp[0]"))
	if res.Rejected == nil {
		t.Fatal("deleting the referenced grp accepted")
	}
	revalidate(t, s, libDTD, libSigma)

	// Removing the reference first unblocks the delete.
	res = s.Apply(DeleteSubtree("lib/ref[0]"), DeleteSubtree("lib/grp[0]"))
	if res.Rejected != nil {
		t.Fatalf("cascade rejected: %+v", res.Rejected)
	}
	if res.Elements != 2 { // lib + remaining grp
		t.Fatalf("elements=%d, want 2", res.Elements)
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestDeleteRootRejected(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	if res := s.Apply(DeleteSubtree("lib")); res.Rejected == nil {
		t.Fatal("root delete accepted")
	}
}

func TestSetText(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	if res := s.Apply(SetText("lib/grp[0]/item[0]", "two")); res.Rejected != nil {
		t.Fatalf("settext rejected: %+v", res.Rejected)
	}
	if !strings.Contains(s.Document(), "two") {
		t.Fatalf("text not updated:\n%s", s.Document())
	}
	// item is (#PCDATA), which this engine reads as one mandatory text
	// run (matching the streaming checker): removal is a content-model
	// rejection.
	if res := s.Apply(SetText("lib/grp[0]/item[0]", "  ")); res.Rejected == nil {
		t.Fatal("text removal accepted against a non-nullable model")
	}
	revalidate(t, s, libDTD, libSigma)

	// Under a nullable mixed model the text node can toggle away and back.
	const mixed = `
<!ELEMENT doc (#PCDATA | b)*>
<!ELEMENT b EMPTY>
`
	m := openLib(t, mixed, "", `<doc>hello</doc>`)
	if res := m.Apply(SetText("doc", " ")); res.Rejected != nil {
		t.Fatalf("text removal rejected: %+v", res.Rejected)
	}
	if res := m.Apply(SetText("doc", "back")); res.Rejected != nil {
		t.Fatalf("text restore rejected: %+v", res.Rejected)
	}
	if !strings.Contains(m.Document(), "back") {
		t.Fatalf("text not restored:\n%s", m.Document())
	}
	revalidate(t, m, mixed, "")

	// grp[0] has an element child; grp[1] is (item*) and rejects text.
	if res := s.Apply(SetText("lib/grp[0]", "x")); res.Rejected == nil {
		t.Fatal("settext on element-children node accepted")
	}
	if res := s.Apply(SetText("lib/grp[1]", "x")); res.Rejected == nil {
		t.Fatal("settext violating the content model accepted")
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestDeleteMergesTextSiblings(t *testing.T) {
	const d = `
<!ELEMENT doc (#PCDATA | b)*>
<!ELEMENT b EMPTY>
`
	s := openLib(t, d, "", `<doc>left<b/>right</doc>`)
	if res := s.Apply(DeleteSubtree("doc/b[0]")); res.Rejected != nil {
		t.Fatalf("delete rejected: %+v", res.Rejected)
	}
	if !strings.Contains(s.Document(), "leftright") {
		t.Fatalf("text not merged:\n%s", s.Document())
	}
	revalidate(t, s, d, "")
	// The merged node must still be editable as one text run.
	if res := s.Apply(SetText("doc", "all new")); res.Rejected != nil {
		t.Fatalf("settext after merge rejected: %+v", res.Rejected)
	}
	revalidate(t, s, d, "")
}

func TestApplyBatchStopsAtRejection(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	res := s.Apply(
		SetAttr("lib/grp[1]", "id", "c"),
		SetAttr("lib/grp[1]", "id", "a"), // duplicate: rejected
		SetAttr("lib/grp[1]", "id", "e"), // must not run
	)
	if res.Applied != 1 || res.Rejected == nil || res.Rejected.Index != 1 {
		t.Fatalf("applied=%d rejected=%+v", res.Applied, res.Rejected)
	}
	if !strings.Contains(s.Document(), `id="c"`) || strings.Contains(s.Document(), `id="e"`) {
		t.Fatalf("batch prefix not applied exactly:\n%s", s.Document())
	}
	revalidate(t, s, libDTD, libSigma)
}

func TestNegatedConstraintsSessions(t *testing.T) {
	// not grp.tag -> grp: some two grps must share a tag.
	// not ref.to <= grp.tag: some ref.to must avoid all grp tags.
	const sigma = "not grp.tag -> grp\nnot ref.to <= grp.tag"
	doc := `<lib><grp id="a" tag="t"/><grp id="b" tag="t"/><ref to="zz"/></lib>`
	s := openLib(t, libDTD, sigma, doc)

	// Breaking the shared tag pair violates the negated key.
	if res := s.Apply(SetAttr("lib/grp[1]", "tag", "u")); res.Rejected == nil {
		t.Fatal("negated-key-breaking edit accepted")
	}
	// Pointing the ref at a live tag violates the negated inclusion, and
	// the repair hint proposes a value outside the tag set.
	res := s.Apply(SetAttr("lib/ref[0]", "to", "t"))
	if res.Rejected == nil {
		t.Fatal("negated-inclusion-breaking edit accepted")
	}
	if res.Rejected.Repair == nil || res.Rejected.Repair.Op == nil {
		t.Fatalf("repair: %+v", res.Rejected.Repair)
	}
	if res := s.Apply(*res.Rejected.Repair.Op); res.Rejected != nil {
		t.Fatalf("repair op rejected: %+v", res.Rejected)
	}
	revalidate(t, s, libDTD, sigma)
}

// TestAppendFastPath exercises the checkpointed append-at-end path: the
// insert position equals the child count, so the content-model check
// resumes from the retained automaton state.
func TestAppendFastPath(t *testing.T) {
	s := openLib(t, libDTD, libSigma, `<lib><grp id="a" tag="x"/></lib>`)
	for i, id := range []string{"b", "c", "d"} {
		res := s.Apply(InsertSubtree("lib", 1+i, `<grp id="`+id+`" tag="x"/>`))
		if res.Rejected != nil {
			t.Fatalf("append %d rejected: %+v", i, res.Rejected)
		}
	}
	// Appends that break the model still fail through the fast path:
	// a second ref cannot be followed by a grp.
	if res := s.Apply(InsertSubtree("lib", 4, `<ref to="a"/>`)); res.Rejected != nil {
		t.Fatalf("ref append rejected: %+v", res.Rejected)
	}
	if res := s.Apply(InsertSubtree("lib", 5, `<grp id="z" tag="x"/>`)); res.Rejected == nil {
		t.Fatal("grp after ref accepted")
	}
	revalidate(t, s, libDTD, libSigma)
}

// TestSessionAllocFree pins the ISSUE's zero-allocation guarantee: the
// steady-state SetAttr and SetText apply paths allocate nothing.
func TestSessionAllocFree(t *testing.T) {
	s := openLib(t, libDTD, libSigma, libDoc)
	setA := []EditOp{SetAttr("lib/grp[1]", "id", "z1")}
	setB := []EditOp{SetAttr("lib/grp[1]", "id", "z2")}
	textA := []EditOp{SetText("lib/grp[0]/item[0]", "alpha")}
	textB := []EditOp{SetText("lib/grp[0]/item[0]", "beta")}
	apply := func(ops []EditOp) {
		if res := s.Apply(ops...); res.Rejected != nil {
			t.Fatalf("steady-state op rejected: %+v", res.Rejected)
		}
	}
	// Warm the scratch buffers and map buckets once.
	apply(setA)
	apply(setB)
	apply(textA)
	if n := testing.AllocsPerRun(200, func() {
		apply(setA)
		apply(setB)
	}); n != 0 {
		t.Fatalf("SetAttr toggle allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		apply(textA)
		apply(textB)
	}); n != 0 {
		t.Fatalf("SetText toggle allocates %v per run, want 0", n)
	}
}
