package docsession

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xic/internal/constraint"
	"xic/internal/doccheck"
	"xic/internal/dtd"
	"xic/internal/randgen"
	"xic/internal/xmltree"
)

// FuzzSessionAgreement is the differential oracle for incremental
// revalidation: for a random document and a random edit script, every
// op's session verdict must agree with a full streaming validation of the
// materialized candidate document — an op is accepted iff applying it to
// a shadow copy of the tree yields a document ValidateStream calls clean
// — and the session's retained document must stay clean throughout.
func FuzzSessionAgreement(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(8))
	f.Add(int64(7), int64(11), uint8(16))
	f.Add(int64(42), int64(0), uint8(4))
	f.Fuzz(func(t *testing.T, docSeed, editSeed int64, nOps uint8) {
		d, sigma, doc := fuzzDocument(t, docSeed)
		ck, v := fuzzChecker(d, sigma)
		s, err := Open(context.Background(), ck, v, strings.NewReader(doc))
		if err != nil {
			// The generated base document may be invalid under the random
			// constraint set; nothing to differentiate then.
			if _, ok := err.(*InvalidDocumentError); ok {
				t.Skip("base document invalid under random constraints")
			}
			t.Fatalf("open: %v", err)
		}

		rng := rand.New(rand.NewSource(editSeed))
		n := int(nOps%32) + 1
		scriptTree, err := xmltree.ParseString(doc)
		if err != nil {
			t.Fatalf("reparse base: %v", err)
		}
		ops := RandomScript(rng, d, scriptTree, n)

		for i, op := range ops {
			shadow, applicable := shadowApply(s.Document(), op)
			res := s.Apply(op)
			accepted := res.Rejected == nil

			if !applicable {
				if accepted {
					t.Fatalf("op %d %+v: session accepted an op the shadow cannot apply", i, op)
				}
			} else {
				rep, err := ck.Run(context.Background(), strings.NewReader(shadow))
				shadowOK := err == nil && rep.OK()
				if accepted != shadowOK {
					t.Fatalf("op %d %+v: session accepted=%v, full restream of candidate says ok=%v\ncandidate:\n%s",
						i, op, accepted, shadowOK, shadow)
				}
			}

			// The session invariant: its retained document is always clean.
			rep, err := ck.Run(context.Background(), strings.NewReader(s.Document()))
			if err != nil || !rep.OK() {
				t.Fatalf("op %d %+v (accepted=%v): session document fails full validation: %v %v\ndoc:\n%s",
					i, op, accepted, err, rep, s.Document())
			}
			if accepted {
				if got := countShadowElements(t, s.Document()); got != res.Elements {
					t.Fatalf("op %d: ApplyResult.Elements=%d, document has %d", i, res.Elements, got)
				}
			}
		}
	})
}

// fuzzDocument derives a deterministic specification and valid base
// document from the seed. Even seeds use the constraint-rich lib family
// (keys and foreign keys, bases valid by construction); odd seeds use a
// random DTD with no constraints, exercising structural and
// content-model agreement on arbitrary shapes.
func fuzzDocument(t *testing.T, seed int64) (*dtd.DTD, []constraint.Constraint, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if seed%2 == 0 {
		d, err := dtd.Parse(libDTD)
		if err != nil {
			t.Fatalf("lib dtd: %v", err)
		}
		sigma, err := constraint.Parse(libSigma)
		if err != nil {
			t.Fatalf("lib sigma: %v", err)
		}
		var b strings.Builder
		b.WriteString("<lib>")
		k := 2 + rng.Intn(6)
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, `<grp id="g%d" tag="t%d">`, i, rng.Intn(3))
			for j := rng.Intn(3); j > 0; j-- {
				fmt.Fprintf(&b, "<item>x%d</item>", rng.Intn(5))
			}
			b.WriteString("</grp>")
		}
		for i := rng.Intn(5); i > 0; i-- {
			fmt.Fprintf(&b, `<ref to="g%d"/>`, rng.Intn(k))
		}
		b.WriteString("</lib>")
		return d, sigma, b.String()
	}
	d := randgen.RandDTD(rng, randgen.DTDSpec{Types: 3 + rng.Intn(4), Depth: 2, AttrsPer: 2})
	var buf bytes.Buffer
	if _, err := randgen.WriteDocument(&buf, d, rng, randgen.DocSpec{TargetNodes: 30 + rng.Intn(40)}); err != nil {
		t.Skipf("document generation: %v", err)
	}
	return d, nil, buf.String()
}

func fuzzChecker(d *dtd.DTD, sigma []constraint.Constraint) (*doccheck.Checker, *xmltree.Validator) {
	v := xmltree.NewValidator(d)
	v.CompileAll()
	return doccheck.New(d, v, sigma), v
}

// shadowApply applies op to an independently parsed copy of the document
// with plain tree surgery — no session machinery — and returns the
// serialized result. applicable is false when the op does not even
// resolve structurally (bad path, bad index, unparseable XML); the
// session must reject those too.
func shadowApply(doc string, op EditOp) (out string, applicable bool) {
	tr, err := xmltree.ParseString(doc)
	if err != nil {
		return "", false
	}
	n, parent, slot := shadowResolve(tr, op.Path)
	if n == nil || n.IsText() {
		return "", false
	}
	switch op.Kind {
	case OpSetAttr:
		if _, ok := n.Attrs[op.Attr]; !ok {
			return "", false
		}
		n.Attrs[op.Attr] = op.Value
	case OpSetText:
		for _, c := range n.Children {
			if !c.IsText() {
				return "", false
			}
		}
		if strings.TrimSpace(op.Value) == "" {
			n.Children = nil
		} else {
			n.Children = []*xmltree.Node{xmltree.NewText(op.Value)}
		}
	case OpInsertSubtree:
		if op.Index < 0 || op.Index > len(n.Children) {
			return "", false
		}
		sub, err := xmltree.ParseString(op.XML)
		if err != nil {
			return "", false
		}
		kids := append([]*xmltree.Node{}, n.Children[:op.Index]...)
		kids = append(kids, sub.Root)
		kids = append(kids, n.Children[op.Index:]...)
		n.Children = kids
	case OpDeleteSubtree:
		if parent == nil {
			return "", false
		}
		parent.Children = append(parent.Children[:slot], parent.Children[slot+1:]...)
	default:
		return "", false
	}
	return xmltree.Serialize(tr), true
}

// shadowResolve is an independent Tree.Path walker (the test's own, so
// the session's resolver is under test, not trusted).
func shadowResolve(tr *xmltree.Tree, path string) (n, parent *xmltree.Node, slot int) {
	segs := strings.Split(path, "/")
	if len(segs) == 0 || segs[0] != tr.Root.Label {
		return nil, nil, 0
	}
	n, parent, slot = tr.Root, nil, -1
	for _, seg := range segs[1:] {
		open := strings.IndexByte(seg, '[')
		if open <= 0 || !strings.HasSuffix(seg, "]") {
			return nil, nil, 0
		}
		label := seg[:open]
		idx := 0
		digits := seg[open+1 : len(seg)-1]
		if digits == "" {
			return nil, nil, 0
		}
		for _, c := range digits {
			if c < '0' || c > '9' {
				return nil, nil, 0
			}
			idx = idx*10 + int(c-'0')
		}
		var found *xmltree.Node
		foundSlot := -1
		seen := 0
		for i, c := range n.Children {
			if c.Label != label {
				continue
			}
			if seen == idx {
				found, foundSlot = c, i
				break
			}
			seen++
		}
		if found == nil {
			return nil, nil, 0
		}
		parent, n, slot = n, found, foundSlot
	}
	return n, parent, slot
}

func countShadowElements(t *testing.T, doc string) int {
	t.Helper()
	tr, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatalf("parse session doc: %v", err)
	}
	count := 0
	tr.Walk(func(n *xmltree.Node) bool {
		if !n.IsText() {
			count++
		}
		return true
	})
	return count
}
