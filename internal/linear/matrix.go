package linear

import (
	"fmt"
	"math/big"
)

// Matrix is a Linear Integer Programming instance in the paper's form:
// does an integer vector x ≥ 0 exist with A·x ≥ B? (The paper's systems
// always carry explicit nonnegativity, matching Papadimitriou's bound for
// nonnegative solutions.) Entries are big integers because the big-M
// rewrite of Theorem 4.1 introduces constants with hundreds of bits.
type Matrix struct {
	Names []string // variable names, indexed by column
	A     [][]*big.Int
	B     []*big.Int
}

// Rows returns the number of constraint rows.
func (m *Matrix) Rows() int { return len(m.A) }

// Cols returns the number of variables.
func (m *Matrix) Cols() int { return len(m.Names) }

// MatrixGE renders the system as a LIP instance A·x ≥ b. Equalities become
// two opposing inequalities and ≤ rows are negated. It fails if the system
// has conditional constraints; use BigM for those.
func (s *System) MatrixGE() (*Matrix, error) {
	if len(s.implications) > 0 {
		return nil, fmt.Errorf("linear: system has %d conditional constraints; use BigM", len(s.implications))
	}
	return s.matrixGE(), nil
}

func (s *System) matrixGE() *Matrix {
	m := &Matrix{Names: s.Names()}
	addRow := func(e Expr, c int64, negate bool) {
		row := make([]*big.Int, len(s.names))
		for i := range row {
			row[i] = big.NewInt(0)
		}
		for i, v := range e {
			if negate {
				v = -v
			}
			row[i] = big.NewInt(v)
		}
		rhs := c
		if negate {
			rhs = -c
		}
		m.A = append(m.A, row)
		m.B = append(m.B, big.NewInt(rhs))
	}
	for _, con := range s.constraints {
		switch con.Op {
		case Ge:
			addRow(con.Expr, con.Const, false)
		case Le:
			addRow(con.Expr, con.Const, true)
		case Eq:
			addRow(con.Expr, con.Const, false)
			addRow(con.Expr, con.Const, true)
		}
	}
	return m
}

// PapadimitriouBound returns the constant c used in the proof of
// Theorem 4.1: a number whose binary notation has
// 1 + ⌈log n + (2m+1)·log(m·a)⌉ ones, i.e. 2^k − 1 for that k, where n is
// the number of variables, m the number of rows and a the largest absolute
// value of the entries. Any solvable instance then has a solution with all
// components ≤ c (Papadimitriou 1981, for nonnegative solutions).
func PapadimitriouBound(vars, rows int, maxAbs int64) *big.Int {
	if vars < 1 {
		vars = 1
	}
	if rows < 1 {
		rows = 1
	}
	if maxAbs < 1 {
		maxAbs = 1
	}
	k := 1 + ceilLog2(big.NewInt(int64(vars))) +
		(2*rows+1)*ceilLog2(new(big.Int).Mul(big.NewInt(int64(rows)), big.NewInt(maxAbs)))
	c := new(big.Int).Lsh(big.NewInt(1), uint(k))
	return c.Sub(c, big.NewInt(1))
}

// ceilLog2 returns ⌈log2 v⌉ for v ≥ 1, and 0 for v ≤ 1.
func ceilLog2(v *big.Int) int {
	if v.Cmp(big.NewInt(2)) < 0 {
		return 0
	}
	bits := v.BitLen() // 2^(bits-1) ≤ v < 2^bits
	// v == 2^(bits-1) exactly → log2 v = bits-1, else bits.
	exact := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	if v.Cmp(exact) == 0 {
		return bits - 1
	}
	return bits
}

// BigM renders the system — including its conditional constraints — as a
// single LIP instance, following the proof of Theorem 4.1: every
// conditional (x > 0 → y > 0) becomes the row c·y ≥ x (i.e. c·y − x ≥ 0)
// where c is the Papadimitriou bound of the unconditional part. Any
// solution of the unconditional part bounded by c then satisfies c·y ≥ x
// iff it satisfies the conditional, so the instances are equisolvable.
func (s *System) BigM() *Matrix {
	base := s.matrixGE()
	c := PapadimitriouBound(len(s.names), len(base.A), s.MaxAbs())
	for _, im := range s.implications {
		row := make([]*big.Int, len(s.names))
		for i := range row {
			row[i] = big.NewInt(0)
		}
		row[im.Then] = new(big.Int).Set(c)
		row[im.If] = big.NewInt(-1)
		base.A = append(base.A, row)
		base.B = append(base.B, big.NewInt(0))
	}
	return base
}

// EvalMatrix checks x ≥ 0 ∧ A·x ≥ b for a candidate big-integer vector.
func (m *Matrix) Eval(x []*big.Int) bool {
	if len(x) != m.Cols() {
		return false
	}
	for _, v := range x {
		if v.Sign() < 0 {
			return false
		}
	}
	sum := new(big.Int)
	term := new(big.Int)
	for r := range m.A {
		sum.SetInt64(0)
		for c := range m.A[r] {
			term.Mul(m.A[r][c], x[c])
			sum.Add(sum, term)
		}
		if sum.Cmp(m.B[r]) < 0 {
			return false
		}
	}
	return true
}
