package linear

import (
	"math/big"
	"strings"
	"testing"
)

func TestVarRegistry(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	if x == y {
		t.Fatal("distinct names share an index")
	}
	if got := s.Var("x"); got != x {
		t.Errorf("re-registering x gave %d, want %d", got, x)
	}
	if s.VarCount() != 2 {
		t.Errorf("VarCount = %d, want 2", s.VarCount())
	}
	if s.Name(x) != "x" || s.Name(y) != "y" {
		t.Errorf("names = %v", s.Names())
	}
	if _, ok := s.Lookup("z"); ok {
		t.Error("Lookup(z) should fail")
	}
}

func TestExprPlus(t *testing.T) {
	e := Term(0, 1).Plus(1, 2).Plus(0, -1)
	if _, ok := e[0]; ok {
		t.Errorf("cancelled term retained: %v", e)
	}
	if e[1] != 2 {
		t.Errorf("e[1] = %d, want 2", e[1])
	}
}

func TestEval(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	s.AddEq(Term(x, 1).Plus(y, 1), 3)
	s.AddLe(Term(x, 1), 2)
	s.AddGe(Term(y, 1), 1)
	s.AddImplication(x, y)

	if msg := s.Eval([]int64{2, 1}); msg != "" {
		t.Errorf("Eval(2,1) = %q, want satisfied", msg)
	}
	if msg := s.Eval([]int64{3, 0}); msg == "" {
		t.Error("Eval(3,0) should violate x ≤ 2 (and more)")
	}
	if msg := s.Eval([]int64{1, 2}); msg != "" {
		t.Errorf("Eval(1,2) = %q, want satisfied", msg)
	}
	if msg := s.Eval([]int64{-1, 4}); !strings.Contains(msg, "< 0") {
		t.Errorf("negative assignment accepted: %q", msg)
	}

	// Implication: x>0 with y=0 violates.
	s2 := NewSystem()
	a := s2.Var("a")
	b := s2.Var("b")
	s2.AddImplication(a, b)
	if msg := s2.Eval([]int64{1, 0}); !strings.Contains(msg, "->") {
		t.Errorf("implication violation missed: %q", msg)
	}
	if msg := s2.Eval([]int64{0, 0}); msg != "" {
		t.Errorf("zero assignment should satisfy implication: %q", msg)
	}
	_ = a
}

func TestEvalBig(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	s.AddEq(Term(x, 2).Plus(y, -1), 0) // 2x = y
	big2 := big.NewInt(2)
	big4 := big.NewInt(4)
	if msg := s.EvalBig([]*big.Int{big2, big4}); msg != "" {
		t.Errorf("EvalBig(2,4) = %q", msg)
	}
	if msg := s.EvalBig([]*big.Int{big2, big2}); msg == "" {
		t.Error("EvalBig(2,2) should violate 2x = y")
	}
}

func TestString(t *testing.T) {
	s := NewSystem()
	x := s.Var("ext(a)")
	y := s.Var("ext(b)")
	s.AddEq(Term(x, 1).Plus(y, -2), 0)
	s.AddGe(Term(y, 1), 0)
	s.AddImplication(x, y)
	out := s.String()
	for _, want := range []string{"ext(a)", "2·ext(b)", ">= 0", "-> ext(b) > 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q, missing %q", out, want)
		}
	}
}

func TestClone(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	s.AddGe(Term(x, 1), 1)
	c := s.Clone()
	c.AddGe(Term(c.Var("y"), 1), 5)
	if s.VarCount() != 1 || len(s.Constraints()) != 1 {
		t.Error("Clone mutated the original")
	}
}

func TestMatrixGE(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	s.AddEq(Term(x, 1).Plus(y, 1), 2) // two rows
	s.AddLe(Term(x, 1), 1)            // one negated row
	s.AddGe(Term(y, 1), 0)            // one row

	m, err := s.MatrixGE()
	if err != nil {
		t.Fatalf("MatrixGE: %v", err)
	}
	if m.Rows() != 4 || m.Cols() != 2 {
		t.Fatalf("matrix is %dx%d, want 4x2", m.Rows(), m.Cols())
	}
	sol := []*big.Int{big.NewInt(1), big.NewInt(1)}
	if !m.Eval(sol) {
		t.Error("x=y=1 should satisfy the matrix form")
	}
	bad := []*big.Int{big.NewInt(2), big.NewInt(0)}
	if m.Eval(bad) {
		t.Error("x=2,y=0 violates x ≤ 1; matrix form disagreed")
	}

	s.AddImplication(x, y)
	if _, err := s.MatrixGE(); err == nil {
		t.Error("MatrixGE should refuse systems with conditionals")
	}
}

func TestPapadimitriouBound(t *testing.T) {
	c := PapadimitriouBound(3, 2, 5)
	// k = 1 + ⌈log2 3⌉ + 5·⌈log2 10⌉ = 1 + 2 + 20 = 23 → c = 2^23 − 1.
	want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 23), big.NewInt(1))
	if c.Cmp(want) != 0 {
		t.Errorf("bound = %s, want %s", c, want)
	}
	// Degenerate inputs clamp to 1.
	if PapadimitriouBound(0, 0, 0).Sign() <= 0 {
		t.Error("bound must be positive")
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct {
		v    int64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11}}
	for _, tt := range tests {
		if got := ceilLog2(big.NewInt(tt.v)); got != tt.want {
			t.Errorf("ceilLog2(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestBigM(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	s.AddLe(Term(y, 1).Plus(x, -1), 0) // y ≤ x
	s.AddGe(Term(x, 1), 0)
	s.AddImplication(x, y)

	m := s.BigM()
	// Two original rows plus one big-M row.
	if m.Rows() != 3 {
		t.Fatalf("BigM rows = %d, want 3", m.Rows())
	}
	// x=0, y=0 is fine.
	if !m.Eval([]*big.Int{big.NewInt(0), big.NewInt(0)}) {
		t.Error("x=y=0 should satisfy BigM form")
	}
	// x=5, y=0 violates the conditional; the big-M row must reject it.
	if m.Eval([]*big.Int{big.NewInt(5), big.NewInt(0)}) {
		t.Error("x=5,y=0 should violate the big-M row")
	}
	// x=5, y=1 satisfies everything.
	if !m.Eval([]*big.Int{big.NewInt(5), big.NewInt(1)}) {
		t.Error("x=5,y=1 should satisfy BigM form")
	}
}
