// Package linear represents systems of linear integer constraints over
// named nonnegative variables — the target language of the paper's
// cardinality encodings (Section 4.1). A system holds equalities and
// inequalities with small integer coefficients plus the conditional
// constraints (x > 0 → y > 0) of Ψ(D,Σ); it can be rendered as the
// paper's Linear Integer Programming instance A·x ≥ b, either directly
// (when there are no conditionals) or through the big-M rewrite c·y ≥ x of
// Theorem 4.1's proof using Papadimitriou's solution bound.
package linear

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Op is a constraint relation.
type Op int

// The three relations between a linear expression and a constant.
const (
	Eq Op = iota // expression = constant
	Le           // expression ≤ constant
	Ge           // expression ≥ constant
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Le:
		return "<="
	case Ge:
		return ">="
	}
	return "?"
}

// Expr is a linear expression: a sparse map from variable index to
// coefficient.
type Expr map[int]int64

// Term returns the expression c·x_i.
func Term(i int, c int64) Expr {
	return Expr{i: c}
}

// Plus adds c·x_i to the expression and returns it.
func (e Expr) Plus(i int, c int64) Expr {
	e[i] += c
	if e[i] == 0 {
		delete(e, i)
	}
	return e
}

// Clone returns a copy of the expression.
func (e Expr) Clone() Expr {
	c := make(Expr, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Constraint is expression Op constant.
type Constraint struct {
	Expr  Expr
	Op    Op
	Const int64
}

// Implication is the conditional constraint x > 0 → y > 0 over nonnegative
// integer variables.
type Implication struct {
	If   int // variable index x
	Then int // variable index y
}

// System is a set of linear integer constraints over named nonnegative
// variables. The zero value is not ready for use; call NewSystem.
type System struct {
	names        []string
	index        map[string]int
	constraints  []Constraint
	implications []Implication
	auxiliary    map[int]bool
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{index: make(map[string]int)}
}

// Var returns the index of the named variable, registering it if new.
// All variables are implicitly constrained to nonnegative integers.
func (s *System) Var(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.names)
	s.names = append(s.names, name)
	s.index[name] = i
	return i
}

// Lookup returns the index of a variable if it is registered.
func (s *System) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Name returns the name of variable i.
func (s *System) Name(i int) string { return s.names[i] }

// VarCount returns the number of registered variables.
func (s *System) VarCount() int { return len(s.names) }

// Names returns the variable names indexed by variable number.
func (s *System) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Add appends the constraint expr op const.
func (s *System) Add(e Expr, op Op, c int64) {
	s.constraints = append(s.constraints, Constraint{Expr: e, Op: op, Const: c})
}

// AddEq appends expr = c.
func (s *System) AddEq(e Expr, c int64) { s.Add(e, Eq, c) }

// AddLe appends expr ≤ c.
func (s *System) AddLe(e Expr, c int64) { s.Add(e, Le, c) }

// AddGe appends expr ≥ c.
func (s *System) AddGe(e Expr, c int64) { s.Add(e, Ge, c) }

// AddImplication appends the conditional constraint x > 0 → y > 0.
func (s *System) AddImplication(x, y int) {
	s.implications = append(s.implications, Implication{If: x, Then: y})
}

// MarkAuxiliary flags a variable as a certificate/bookkeeping variable
// whose magnitude is irrelevant; solvers exclude it from minimisation
// objectives so it exerts no pressure against the constraints defining it.
func (s *System) MarkAuxiliary(i int) {
	if s.auxiliary == nil {
		s.auxiliary = make(map[int]bool)
	}
	s.auxiliary[i] = true
}

// Auxiliary reports whether the variable was marked with MarkAuxiliary.
func (s *System) Auxiliary(i int) bool { return s.auxiliary[i] }

// Constraints returns the linear constraints of the system.
func (s *System) Constraints() []Constraint { return s.constraints }

// Implications returns the conditional constraints of the system.
func (s *System) Implications() []Implication { return s.implications }

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := NewSystem()
	c.names = append([]string(nil), s.names...)
	for k, v := range s.index {
		c.index[k] = v
	}
	for _, con := range s.constraints {
		c.constraints = append(c.constraints, Constraint{Expr: con.Expr.Clone(), Op: con.Op, Const: con.Const})
	}
	c.implications = append([]Implication(nil), s.implications...)
	for i := range s.auxiliary {
		c.MarkAuxiliary(i)
	}
	return c
}

// MaxAbs returns the largest absolute value among coefficients and
// constants, at least 1.
func (s *System) MaxAbs() int64 {
	var m int64 = 1
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for _, c := range s.constraints {
		if a := abs(c.Const); a > m {
			m = a
		}
		for _, v := range c.Expr {
			if a := abs(v); a > m {
				m = a
			}
		}
	}
	return m
}

// exprString renders an expression with variable names.
func (s *System) exprString(e Expr) string {
	idx := make([]int, 0, len(e))
	for i := range e {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	if len(idx) == 0 {
		return "0"
	}
	var b strings.Builder
	for k, i := range idx {
		c := e[i]
		switch {
		case k == 0 && c == 1:
			b.WriteString(s.names[i])
		case k == 0 && c == -1:
			b.WriteString("-" + s.names[i])
		case k == 0:
			fmt.Fprintf(&b, "%d·%s", c, s.names[i])
		case c == 1:
			b.WriteString(" + " + s.names[i])
		case c == -1:
			b.WriteString(" - " + s.names[i])
		case c > 0:
			fmt.Fprintf(&b, " + %d·%s", c, s.names[i])
		default:
			fmt.Fprintf(&b, " - %d·%s", -c, s.names[i])
		}
	}
	return b.String()
}

// String renders the system one constraint per line, followed by its
// conditional constraints.
func (s *System) String() string {
	var b strings.Builder
	for _, c := range s.constraints {
		fmt.Fprintf(&b, "%s %s %d\n", s.exprString(c.Expr), c.Op, c.Const)
	}
	for _, im := range s.implications {
		fmt.Fprintf(&b, "%s > 0 -> %s > 0\n", s.names[im.If], s.names[im.Then])
	}
	return b.String()
}

// EvalBig is Eval for big-integer assignments produced by the ILP solver.
// Entries must cover all variables; nil entries are taken as 0.
func (s *System) EvalBig(x []*big.Int) string {
	get := func(i int) *big.Int {
		if i < len(x) && x[i] != nil {
			return x[i]
		}
		return big.NewInt(0)
	}
	for i := range x {
		if x[i] != nil && x[i].Sign() < 0 {
			return fmt.Sprintf("%s < 0", s.names[i])
		}
	}
	sum := new(big.Int)
	term := new(big.Int)
	for _, c := range s.constraints {
		sum.SetInt64(0)
		for i, coeff := range c.Expr {
			term.Mul(big.NewInt(coeff), get(i))
			sum.Add(sum, term)
		}
		cmp := sum.Cmp(big.NewInt(c.Const))
		ok := false
		switch c.Op {
		case Eq:
			ok = cmp == 0
		case Le:
			ok = cmp <= 0
		case Ge:
			ok = cmp >= 0
		}
		if !ok {
			return fmt.Sprintf("%s %s %d violated (lhs=%s)", s.exprString(c.Expr), c.Op, c.Const, sum)
		}
	}
	for _, im := range s.implications {
		if get(im.If).Sign() > 0 && get(im.Then).Sign() == 0 {
			return fmt.Sprintf("%s > 0 -> %s > 0 violated", s.names[im.If], s.names[im.Then])
		}
	}
	return ""
}

// Eval checks a candidate assignment (indexed by variable number) against
// all constraints and implications, returning the first violated constraint
// description, or "" if the assignment satisfies the system. Variables
// beyond len(x) are taken as 0.
func (s *System) Eval(x []int64) string {
	get := func(i int) int64 {
		if i < len(x) {
			return x[i]
		}
		return 0
	}
	for i := range x {
		if x[i] < 0 {
			return fmt.Sprintf("%s < 0", s.names[i])
		}
	}
	for _, c := range s.constraints {
		var sum int64
		for i, coeff := range c.Expr {
			sum += coeff * get(i)
		}
		ok := false
		switch c.Op {
		case Eq:
			ok = sum == c.Const
		case Le:
			ok = sum <= c.Const
		case Ge:
			ok = sum >= c.Const
		}
		if !ok {
			return fmt.Sprintf("%s %s %d violated (lhs=%d)", s.exprString(c.Expr), c.Op, c.Const, sum)
		}
	}
	for _, im := range s.implications {
		if get(im.If) > 0 && get(im.Then) == 0 {
			return fmt.Sprintf("%s > 0 -> %s > 0 violated", s.names[im.If], s.names[im.Then])
		}
	}
	return ""
}
