package linear

import "testing"

func TestMaxAbs(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	if got := s.MaxAbs(); got != 1 {
		t.Errorf("empty system MaxAbs = %d, want 1", got)
	}
	s.AddEq(Term(x, -7).Plus(y, 3), -2)
	if got := s.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %d, want 7", got)
	}
	s.AddGe(Term(y, 1), 100)
	if got := s.MaxAbs(); got != 100 {
		t.Errorf("MaxAbs = %d, want 100", got)
	}
}

func TestAuxiliaryMarking(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	if s.Auxiliary(x) || s.Auxiliary(y) {
		t.Error("fresh variables should not be auxiliary")
	}
	s.MarkAuxiliary(y)
	if s.Auxiliary(x) || !s.Auxiliary(y) {
		t.Error("MarkAuxiliary not reflected")
	}
	c := s.Clone()
	if !c.Auxiliary(y) {
		t.Error("Clone drops auxiliary marks")
	}
}

func TestAddOpsAndAccessors(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	s.Add(Term(x, 2), Le, 4)
	s.Add(Term(x, 1), Ge, 1)
	cons := s.Constraints()
	if len(cons) != 2 || cons[0].Op != Le || cons[1].Op != Ge {
		t.Errorf("constraints = %+v", cons)
	}
	if Eq.String() != "=" || Le.String() != "<=" || Ge.String() != ">=" {
		t.Error("Op strings wrong")
	}
	if Op(99).String() != "?" {
		t.Error("unknown Op should render as ?")
	}
}
