// Benchmarks for incremental revalidation, in the external test package
// so they can share internal/editbench — the constructed corpus behind
// BENCH_edit.json and the CI edit gate — with cmd/benchdiff -kind edit.
package xic_test

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"xic"
	"xic/internal/editbench"
)

func editSpec(tb testing.TB) *xic.Spec {
	tb.Helper()
	spec, err := xic.CompileStrings(editbench.DTDSrc, editbench.ConsSrc)
	if err != nil {
		tb.Fatal(err)
	}
	return spec
}

// BenchmarkSessionEdit measures steady-state per-edit cost through an open
// session on the 1e5-element corpus case.
func BenchmarkSessionEdit(b *testing.B) {
	spec := editSpec(b)
	c := editbench.DefaultCorpus()[2]
	sess, err := spec.OpenSession(context.Background(), strings.NewReader(c.Document()))
	if err != nil {
		b.Fatal(err)
	}
	// A steady-state mix that stays valid under endless repetition: a ref
	// retargeted between two live groups, an item's text toggled, and a
	// never-referenced group renamed back and forth.
	ops := []xic.EditOp{
		xic.SetAttr("lib/ref[0]", "to", "g1"),
		xic.SetText("lib/grp[0]/item[0]", "pong"),
		xic.SetAttr("lib/grp[2399]", "id", "spare-a"),
		xic.SetAttr("lib/ref[0]", "to", "g2"),
		xic.SetText("lib/grp[0]/item[0]", "ping"),
		xic.SetAttr("lib/grp[2399]", "id", "spare-b"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := sess.Apply(ops[i%len(ops)]); res.Rejected != nil {
			b.Fatalf("op %d rejected: %+v", i%len(ops), res.Rejected)
		}
	}
}

// TestWriteEditBench records the session-vs-restream comparison to the
// JSON file named by XIC_EDIT_BENCH_OUT (skipped otherwise; CI sets it to
// BENCH_edit.json). It asserts the acceptance bound of the session
// subsystem: applying a point-edit script through a session at least 10x
// faster than naively editing and re-streaming the whole document, in
// aggregate over the corpus. The real gap is orders of magnitude —
// O(edit) against O(document) per edit.
func TestWriteEditBench(t *testing.T) {
	out := os.Getenv("XIC_EDIT_BENCH_OUT")
	if out == "" {
		t.Skip("set XIC_EDIT_BENCH_OUT=BENCH_edit.json to record the edit benchmark")
	}
	spec := editSpec(t)
	ctx := context.Background()
	var records []editbench.Result
	var totalSession, totalRestream float64
	for _, c := range editbench.DefaultCorpus() {
		res, err := editbench.Run(ctx, spec, c)
		if err != nil {
			t.Fatal(err)
		}
		totalSession += res.SessionMs
		totalRestream += res.RestreamMs
		records = append(records, res)
		t.Logf("%-10s nodes %6d  session %8.3fms (%6.1fµs/op)  restream %9.1fms  speedup %.0fx",
			res.Case, res.Nodes, res.SessionMs, res.SessionUsPer, res.RestreamMs, res.Speedup)
	}
	ratio := 0.0
	if totalSession > 0 {
		ratio = totalRestream / totalSession
	}
	t.Logf("TOTAL session %.1f ms, restream %.1f ms, speedup %.0fx", totalSession, totalRestream, ratio)
	if ratio < 10 {
		t.Errorf("session edits only %.1fx faster than edit-and-restream on the corpus; the acceptance bound is 10x", ratio)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
