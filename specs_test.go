package xic

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestShippedSpecs keeps the files under specs/ working: they are the
// user-facing starting points referenced by the README and the CLI help.
func TestShippedSpecs(t *testing.T) {
	read := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("specs", name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(data)
	}

	teachers, err := CompileStrings(read("teachers.dtd"), read("teachers.xic"))
	if err != nil {
		t.Fatalf("compile teachers spec: %v", err)
	}
	res, err := teachers.WithOptions(Options{SkipWitness: true}).Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("specs/teachers.* must reproduce the paper's inconsistency")
	}

	school, err := CompileStrings(read("school.dtd"), read("school.xic"))
	if err != nil {
		t.Fatalf("compile school spec: %v", err)
	}
	doc, err := ParseDocumentString(read("school.xml"))
	if err != nil {
		t.Fatalf("school.xml: %v", err)
	}
	if err := school.Validate(context.Background(), doc); err != nil {
		t.Errorf("specs/school.xml should validate against D3 + Σ3: %v", err)
	}
}
