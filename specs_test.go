package xic

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedSpecs keeps the files under specs/ working: they are the
// user-facing starting points referenced by the README and the CLI help.
func TestShippedSpecs(t *testing.T) {
	read := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("specs", name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(data)
	}

	teachers, err := ParseDTD(read("teachers.dtd"))
	if err != nil {
		t.Fatalf("teachers.dtd: %v", err)
	}
	sigma1, err := ParseConstraints(read("teachers.xic"))
	if err != nil {
		t.Fatalf("teachers.xic: %v", err)
	}
	res, err := CheckConsistency(teachers, sigma1, &Options{SkipWitness: true})
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if res.Consistent {
		t.Error("specs/teachers.* must reproduce the paper's inconsistency")
	}

	school, err := ParseDTD(read("school.dtd"))
	if err != nil {
		t.Fatalf("school.dtd: %v", err)
	}
	sigma3, err := ParseConstraints(read("school.xic"))
	if err != nil {
		t.Fatalf("school.xic: %v", err)
	}
	doc, err := ParseDocumentString(read("school.xml"))
	if err != nil {
		t.Fatalf("school.xml: %v", err)
	}
	if err := ValidateDocument(doc, school, sigma3); err != nil {
		t.Errorf("specs/school.xml should validate against D3 + Σ3: %v", err)
	}
}
