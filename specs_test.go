package xic

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestShippedSpecs keeps the files under specs/ working: they are the
// user-facing starting points referenced by the README and the CLI help.
func TestShippedSpecs(t *testing.T) {
	read := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("specs", name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(data)
	}

	teachers, err := CompileStrings(read("teachers.dtd"), read("teachers.xic"))
	if err != nil {
		t.Fatalf("compile teachers spec: %v", err)
	}
	res, err := teachers.WithOptions(Options{SkipWitness: true}).Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("specs/teachers.* must reproduce the paper's inconsistency")
	}

	school, err := CompileStrings(read("school.dtd"), read("school.xic"))
	if err != nil {
		t.Fatalf("compile school spec: %v", err)
	}
	doc, err := ParseDocumentString(read("school.xml"))
	if err != nil {
		t.Fatalf("school.xml: %v", err)
	}
	if err := school.Validate(context.Background(), doc); err != nil {
		t.Errorf("specs/school.xml should validate against D3 + Σ3: %v", err)
	}

	// The registrar spec is the compile-amortisation case of the
	// BENCH_compile.json corpus: keys-only (linear consistency) over a
	// schema big enough that CompileDTD dominates any single check.
	registrar, err := CompileStrings(read("registrar.dtd"), read("registrar.xic"))
	if err != nil {
		t.Fatalf("compile registrar spec: %v", err)
	}
	if registrar.Class().String() != "C_K" {
		t.Errorf("registrar constraints should be keys-only, got %s", registrar.Class())
	}
	res, err = registrar.WithOptions(Options{SkipWitness: true}).Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if !res.Consistent {
		t.Error("specs/registrar.* must be consistent")
	}

	// The teachers implication-query sidecar must stay parseable: it is
	// the implication-sweep case of the same corpus.
	queries, err := ParseConstraints(read("teachers.queries"))
	if err != nil {
		t.Fatalf("teachers.queries: %v", err)
	}
	if len(queries) == 0 {
		t.Error("teachers.queries lists no queries")
	}
}
