package xic

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/doccheck"
	"xic/internal/docsession"
	"xic/internal/xmltree"
)

// Spec is a compiled XML specification: a DTD together with a set of
// integrity constraints, with all per-DTD work done once at Compile time —
// DTD validation, Section 4.1 simplification, the cardinality-encoding
// template Ψ_{D_N}, constraint validation and classification, and the
// conformance automata. This is the engine for the paper's fixed-DTD
// setting (Corollaries 4.11 and 5.5), where one schema serves many
// consistency, implication and validation requests and each request is
// polynomial once the per-DTD work is amortised.
//
// A Spec is immutable and safe for concurrent use: methods never mutate
// shared state, so any number of goroutines may share one Spec. Decision
// methods take a context.Context that is checked inside the ILP
// branch-and-bound search and the witness builder — cancelling it aborts
// even an adversarial NP instance promptly with an error matching
// ErrCanceled.
//
// xic:frozen
type Spec struct {
	schema *Schema
	d      *DTD
	sigma  []Constraint
	class  Class
	consFP string // fingerprint of the canonical bound set; implication-cache key part

	eng       *core.Checker
	validator *xmltree.Validator
	stream    *doccheck.Checker

	opt Options
	par int // ConsistentAll/ImpliesAll worker bound; 0 = GOMAXPROCS
}

// Compile builds a Spec from a DTD and a constraint set. It is the
// composition of the two stages of the API — CompileDTD then Schema.Bind —
// and remains the simple path when one DTD carries one constraint set. It
// eagerly validates the DTD, simplifies it, builds the cardinality-encoding
// template, validates every constraint against the DTD and classifies the
// set, so that compile errors surface here — as a *SpecError — rather
// than on the serving path. When many constraint sets share one DTD,
// compile the Schema once and Bind each set instead: Bind skips all per-DTD
// work.
//
// Any well-formed constraint set compiles, including the multi-attribute
// classes whose static consistency is undecidable (Theorem 3.1): those
// Specs still serve Validate, while Consistent reports ErrUndecidable.
func Compile(d *DTD, constraints ...Constraint) (*Spec, error) {
	sch, err := CompileDTD(d)
	if err != nil {
		return nil, err
	}
	return sch.Bind(constraints...)
}

// CompileStrings is Compile over textual inputs: a DTD in XML DTD syntax
// and a constraint set in the line-oriented syntax of ParseConstraints —
// the composition of CompileDTDString and Schema.BindStrings.
// Syntax errors surface as *ParseError with line/offset positions; semantic
// errors the parsers detect (duplicate declarations, a name used as both
// element type and attribute) surface as *SpecError naming the compile
// stage, exactly as if Compile itself had rejected them.
func CompileStrings(dtdSrc, constraintsSrc string) (*Spec, error) {
	sch, err := CompileDTDString(dtdSrc)
	if err != nil {
		return nil, err
	}
	return sch.BindStrings(constraintsSrc)
}

// asStageError leaves structured taxonomy errors untouched and wraps
// anything else as a *SpecError for the given compile stage.
func asStageError(err error, stage string) error {
	var pe *ParseError
	var se *SpecError
	if errors.As(err, &pe) || errors.As(err, &se) {
		return err
	}
	return &SpecError{Stage: stage, Err: err}
}

// FingerprintDTD returns the content hash identifying a DTD source text:
// the hex SHA-256 of the source under a section-specific domain prefix, so
// a DTD and a constraint set with identical bytes never collide. This is
// the schema-tier cache key of the two-level registry behind cmd/xicd:
// equal sources always hash equal, so byte-identical resubmissions reuse
// the compiled Schema without re-running CompileDTD. It deliberately
// hashes sources, not parsed structure: two formattings of one DTD get
// distinct fingerprints, which only costs a duplicate cache entry (use
// Schema.Fingerprint for the canonical, formatting-independent hash).
func FingerprintDTD(dtdSrc string) string {
	return sectionHash("dtd", dtdSrc)
}

// FingerprintConstraints returns the content hash identifying a constraint
// source text, under a domain prefix distinct from FingerprintDTD's.
func FingerprintConstraints(constraintsSrc string) string {
	return sectionHash("xic", constraintsSrc)
}

// Fingerprint returns the content hash identifying the compiled form of a
// full textual specification: the concatenation of FingerprintDTD over the
// DTD source and FingerprintConstraints over the constraint source. The
// two-level registry behind cmd/xicd keys its spec tier by this fused form,
// and the embedded DTD half doubles as the schema-tier key, so a cache can
// recover the schema identity of any spec id by splitting it in the middle.
func Fingerprint(dtdSrc, constraintsSrc string) string {
	return FingerprintDTD(dtdSrc) + FingerprintConstraints(constraintsSrc)
}

// sectionHash hashes one fingerprint section under a domain prefix. The
// prefix (with a NUL separator, which neither domain contains) keeps the
// DTD and constraint hash spaces disjoint.
func sectionHash(domain, src string) string {
	h := sha256.New()
	io.WriteString(h, domain)
	h.Write([]byte{0})
	io.WriteString(h, src)
	return hex.EncodeToString(h.Sum(nil))
}

// errNilDTD keeps the nil-DTD compile error a stable value.
var errNilDTD = &nilDTDError{}

type nilDTDError struct{}

func (*nilDTDError) Error() string { return "nil DTD" }

// DTD returns the compiled DTD.
func (s *Spec) DTD() *DTD { return s.d }

// Schema returns the compiled Schema the Spec was bound from. Specs built
// by Compile own a private Schema; Specs bound from a shared Schema return
// it, so callers can Bind further constraint sets against the same
// compiled engine.
func (s *Spec) Schema() *Schema { return s.schema }

// Constraints returns a copy of the compiled constraint set.
func (s *Spec) Constraints() []Constraint {
	return append([]Constraint(nil), s.sigma...)
}

// Class returns the smallest of the paper's constraint classes containing
// the compiled set.
func (s *Spec) Class() Class { return s.class }

// SolveOptions returns the Spec's effective solver configuration as one
// flat value. Zero fields mean their documented defaults (MaxNodes 0 =
// DefaultMaxNodes, SolverParallelism 0 = serial search / GOMAXPROCS
// batches).
func (s *Spec) SolveOptions() SolveOptions {
	return SolveOptions{
		MaxNodes:           s.opt.Solver.MaxNodes,
		SolverParallelism:  s.par,
		DisablePresolve:    s.opt.Solver.DisablePresolve,
		DisableFastTableau: s.opt.Solver.DisableFastTableau,
		SkipWitness:        s.opt.SkipWitness,
	}
}

// WithSolveOptions returns a Spec sharing this one's compiled state with
// the given tweaks applied on top of its current SolveOptions. The
// receiver is unchanged, so distinct callers can hold differently-tuned
// views of one compiled engine:
//
//	fast := spec.WithSolveOptions(xic.WithSkipWitness(), xic.WithSolverParallelism(8))
//
// For a single differently-tuned call, use ConsistentOpts or ImpliesOpts
// instead.
func (s *Spec) WithSolveOptions(opts ...SolveOption) *Spec {
	so := s.SolveOptions()
	for _, apply := range opts {
		if apply != nil {
			apply(&so)
		}
	}
	co := s.opt
	co.Solver.MaxNodes = so.MaxNodes
	co.Solver.DisablePresolve = so.DisablePresolve
	co.Solver.DisableFastTableau = so.DisableFastTableau
	co.SkipWitness = so.SkipWitness
	par := so.SolverParallelism
	if par < 1 {
		par = 0
	}
	out := *s
	out.opt = co
	out.par = par
	return &out
}

// WithOptions returns a Spec sharing this one's compiled state but using
// opt for subsequent checks (solver budget, witness limits, witness
// skipping). The receiver is unchanged.
//
// Deprecated: use WithSolveOptions, which covers the solver knobs in one
// flat value; WithOptions remains only for the witness-size limits that
// SolveOptions does not carry.
func (s *Spec) WithOptions(opt Options) *Spec {
	out := *s
	out.opt = opt
	return &out
}

// WithParallelism returns a Spec sharing this one's compiled state whose
// ConsistentAll and ImpliesAll use at most n worker goroutines. n < 1
// restores the default (runtime.GOMAXPROCS).
//
// Deprecated: use WithSolveOptions(WithSolverParallelism(n)), which bounds
// the batch pool and the in-solver branch-and-bound workers together.
func (s *Spec) WithParallelism(n int) *Spec {
	return s.WithSolveOptions(WithSolverParallelism(n))
}

// engineOptions assembles the core.Options actually handed to the engine:
// the stored options with the Spec's parallelism threaded into the solver,
// so one knob (SolverParallelism) drives both the batch pool and the
// branch-and-bound workers.
func (s *Spec) engineOptions() core.Options {
	co := s.opt
	if s.par > 0 {
		co.Solver.Parallelism = s.par
	}
	return co
}

// ConsistentDTD reports whether any finite document at all conforms to the
// DTD (Theorem 3.5(1)); linear time, constraint set ignored.
func (s *Spec) ConsistentDTD() bool { return s.d.HasValidTree() }

// SolveStats returns a snapshot of the Spec's cumulative solver counters:
// how many ILP-oracle calls its checks have made, how many were answered
// by the presolve layer alone or by the no-branching fast path, and how
// much presolve shrank the systems that did reach branch-and-bound. The
// counters are shared across WithOptions/WithParallelism views of one
// compiled engine and are safe to read concurrently; cmd/xicd aggregates
// them across its spec registry under /debug/vars.
func (s *Spec) SolveStats() SolveStats { return s.eng.SolveStats() }

// Consistent decides whether some finite document conforms to the DTD and
// satisfies every compiled constraint, returning a verified witness
// document on success (unless Options.SkipWitness is set). Keys-only sets
// decide in linear time; unary sets with foreign keys, inclusions or
// negations pay the NP price of Theorems 4.7/5.1, bounded by the context:
// cancellation returns an error matching ErrCanceled.
func (s *Spec) Consistent(ctx context.Context) (*Result, error) {
	co := s.engineOptions()
	res, err := s.eng.ConsistentContext(ctx, s.sigma, &co)
	return res, wrapSolveError(err)
}

// ConsistentOpts is Consistent with per-call option tweaks layered on top
// of the Spec's SolveOptions — the one-shot form of WithSolveOptions:
//
//	res, err := spec.ConsistentOpts(ctx, xic.WithMaxNodes(100), xic.WithSkipWitness())
//
// The Spec itself is unchanged.
func (s *Spec) ConsistentOpts(ctx context.Context, opts ...SolveOption) (*Result, error) {
	return s.WithSolveOptions(opts...).Consistent(ctx)
}

// ConsistentWith is Consistent for the compiled set extended with extra
// constraints. The extension is per-call: the Spec itself is unchanged,
// and the compiled encoding template is still reused, which is the
// intended way to probe many candidate sets against one schema.
func (s *Spec) ConsistentWith(ctx context.Context, extra ...Constraint) (*Result, error) {
	co := s.engineOptions()
	res, err := s.eng.ConsistentContext(ctx, s.join(extra), &co)
	return res, wrapSolveError(err)
}

// Implies decides whether every document conforming to the DTD and
// satisfying the compiled set also satisfies phi, returning a
// counterexample document when not. Unary implication is coNP
// (Theorems 4.10/5.4); keys-only implication is linear. Cancellation
// returns an error matching ErrCanceled.
//
// Settled verdicts are memoized on the Schema, keyed by the bound set's
// fingerprint, the effective Options and phi, so repeated implication
// queries against a stable schema — from this Spec or any other Spec
// binding an identical set — are pure lookups. Errors are never cached,
// and memoized counterexamples are private copies.
func (s *Spec) Implies(ctx context.Context, phi Constraint) (*Implication, error) {
	co := s.engineOptions()
	key := s.consFP + "\x00" + optionsKey(&co) + "\x00" + phi.String()
	if imp, ok := s.schema.memo.get(key); ok {
		return imp, nil
	}
	imp, err := s.eng.ImpliesContext(ctx, s.sigma, phi, &co)
	if err != nil {
		return nil, wrapSolveError(err)
	}
	s.schema.memo.put(key, imp)
	return imp, nil
}

// ImpliesOpts is Implies with per-call option tweaks layered on top of the
// Spec's SolveOptions, memoized under the effective options exactly like
// Implies. The Spec itself is unchanged.
func (s *Spec) ImpliesOpts(ctx context.Context, phi Constraint, opts ...SolveOption) (*Implication, error) {
	return s.WithSolveOptions(opts...).Implies(ctx, phi)
}

// ImpliesKey is the linear-time implication test for a key by a keys-only
// compiled set (Theorem 3.5(3)).
func (s *Spec) ImpliesKey(phi Key) (bool, error) {
	ok, err := core.ImpliesKey(s.d, s.sigma, phi)
	if err != nil {
		return false, &SpecError{Stage: "constraints", Err: err}
	}
	return ok, nil
}

// Diagnose explains an inconsistent specification: it reports whether the
// DTD alone is unsatisfiable, and otherwise returns a minimal subset of
// the compiled constraints that is still inconsistent with the DTD
// (removing any one member restores consistency). The |Σ|+1 consistency
// checks of the deletion filter all reuse the compiled encoding.
func (s *Spec) Diagnose(ctx context.Context) (*Diagnosis, error) {
	co := s.engineOptions()
	diag, err := s.eng.DiagnoseContext(ctx, s.sigma, &co)
	return diag, wrapSolveError(err)
}

// Validate checks one concrete document dynamically: it must conform to
// the DTD and satisfy every compiled constraint. This is the validation
// mode the paper contrasts with static consistency checking, and it works
// for every class — including the multi-attribute classes whose static
// problem is undecidable.
//
// The signature mirrors ValidateStream: the context bounds the work, with
// the conformance walk checking it every few thousand nodes and the
// constraint pass checking it between constraints, so cancelling aborts
// validation of even a huge in-memory tree with an error matching both
// ErrCanceled and the context's own error. A nil context means no bound.
func (s *Spec) Validate(ctx context.Context, doc *Tree) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.validator.ValidateContext(ctx, doc); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		//xic:ignore errtaxonomy conformance failures are the documented stringly result of dynamic validation, matching the deprecated ValidateDocument
		return err
	}
	done := ctx.Done()
	for _, c := range s.sigma {
		select {
		case <-done:
			return fmt.Errorf("%w: validation aborted: %w", ErrCanceled, ctx.Err())
		default:
		}
		if !constraint.Satisfied(doc, c) {
			return &ViolationError{Violated: c}
		}
	}
	return nil
}

// ValidateStream checks one document in a single SAX-style pass over r:
// DTD conformance and every compiled constraint — keys, foreign keys,
// inclusions and their negations — are verified without materializing the
// document as a tree, so memory is bounded by the open-element stack and
// the constraint hash indexes rather than the document size. This is the
// large-document serving mode of the fixed-DTD setting (Corollaries 4.11
// and 5.5): foreign keys may reference elements appearing later in the
// stream, because reference sets are resolved at end-of-document.
//
// The verdict matches Validate on ParseDocument of the same bytes: a
// well-formed document yields a Report (whose OK answers the validation
// question and whose Violations carry element paths, lines and byte
// offsets), while unparseable documents — syntax errors, multiple roots,
// colliding attribute names — yield a *ParseError. Cancelling the context
// aborts the pass with an error matching ErrCanceled. A Spec is immutable,
// so any number of ValidateStream calls may run concurrently.
func (s *Spec) ValidateStream(ctx context.Context, r io.Reader) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep, err := s.stream.Run(ctx, r)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		return nil, wrapDocumentError(err)
	}
	return rep, nil
}

// OpenSession ingests one document from r — a single streaming validation
// pass — and returns a live editing session over it: the parsed tree, the
// per-constraint hash indexes and a per-element content-model checkpoint
// are retained, so subsequent Session.Apply calls re-check each edit
// against only the touched scopes, in O(edit) rather than O(document).
// Every edit is transactional — accepted in full or rejected with a delta
// report and a minimal repair hint — so the session's document is valid
// at all times.
//
// Invalid documents yield an *InvalidDocumentError carrying the full
// report; unparseable ones a *ParseError. The context bounds the
// ingestion pass only; the returned Session is independent of it.
func (s *Spec) OpenSession(ctx context.Context, r io.Reader) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sess, err := docsession.Open(ctx, s.stream, s.validator, r)
	if err != nil {
		var ide *docsession.InvalidDocumentError
		if errors.As(err, &ide) {
			return nil, ide
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		return nil, wrapDocumentError(err)
	}
	return sess, nil
}

// join returns the compiled set extended with extra constraints, copying
// only when needed.
func (s *Spec) join(extra []Constraint) []Constraint {
	if len(extra) == 0 {
		return s.sigma
	}
	out := make([]Constraint, 0, len(s.sigma)+len(extra))
	return append(append(out, s.sigma...), extra...)
}

// BatchResult is one outcome of Spec.ConsistentAll: exactly one of Result
// and Err is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// BatchImplication is one outcome of Spec.ImpliesAll: exactly one of
// Implication and Err is non-nil.
type BatchImplication struct {
	Implication *Implication
	Err         error
}

// ConsistentAll checks many constraint-set extensions against the compiled
// specification: element i of the answer is ConsistentWith(ctx, sets[i]...).
// The checks run on a bounded worker pool (see WithParallelism) and all
// share the compiled encoding template, so throughput scales with cores
// instead of re-paying the per-DTD work per set. Cancelling the context
// makes remaining entries fail with errors matching ErrCanceled.
func (s *Spec) ConsistentAll(ctx context.Context, sets [][]Constraint) []BatchResult {
	out := make([]BatchResult, len(sets))
	s.forEach(len(sets), func(i int) {
		res, err := s.ConsistentWith(ctx, sets[i]...)
		out[i] = BatchResult{Result: res, Err: err}
	})
	return out
}

// ImpliesAll decides implication of many conclusions by the compiled set:
// element i of the answer is Implies(ctx, phis[i]). Scheduling and
// cancellation behave as in ConsistentAll.
func (s *Spec) ImpliesAll(ctx context.Context, phis []Constraint) []BatchImplication {
	out := make([]BatchImplication, len(phis))
	s.forEach(len(phis), func(i int) {
		imp, err := s.Implies(ctx, phis[i])
		out[i] = BatchImplication{Implication: imp, Err: err}
	})
	return out
}

// forEach runs do(0..n-1) on at most s.parallelism() goroutines.
func (s *Spec) forEach(n int, do func(i int)) {
	workers := s.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

func (s *Spec) parallelism() int {
	if s.par > 0 {
		return s.par
	}
	return runtime.GOMAXPROCS(0)
}
