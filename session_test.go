package xic

import (
	"context"
	"strings"
	"testing"
)

const sessionDTD = `
<!ELEMENT school (teacher*, course*)>
<!ELEMENT teacher EMPTY>
<!ELEMENT course EMPTY>
<!ATTLIST teacher name CDATA #REQUIRED>
<!ATTLIST course taught_by CDATA #REQUIRED>
`

const sessionSigma = "teacher.name -> teacher\ncourse.taught_by => teacher.name"

func sessionSpec(t *testing.T) *Spec {
	t.Helper()
	d, err := ParseDTD(sessionDTD)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := ParseConstraints(sessionSigma)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(d, sigma...)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSpecOpenSession(t *testing.T) {
	spec := sessionSpec(t)
	doc := `<school><teacher name="ada"/><teacher name="bob"/><course taught_by="ada"/></school>`
	s, err := spec.OpenSession(context.Background(), strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Elements() != 4 {
		t.Fatalf("elements=%d, want 4", s.Elements())
	}

	// An accepted edit, then one rejected for stranding the course.
	if res := s.Apply(SetAttr("school/teacher[1]", "name", "cyd")); res.Rejected != nil {
		t.Fatalf("rename rejected: %+v", res.Rejected)
	}
	res := s.Apply(SetAttr("school/teacher[0]", "name", "eve"))
	if res.Rejected == nil {
		t.Fatal("stranding rename accepted")
	}
	if res.Rejected.Repair == nil {
		t.Fatal("no repair hint on rejection")
	}

	// The session document always revalidates cleanly via the same Spec.
	rep, err := spec.ValidateStream(context.Background(), strings.NewReader(s.Document()))
	if err != nil || !rep.OK() {
		t.Fatalf("session document invalid: %v %v", err, rep)
	}

	// Structural edits round-trip through the public op constructors.
	res = s.Apply(
		InsertSubtree("school", 2, `<teacher name="dan"/>`),
		InsertSubtree("school", 4, `<course taught_by="dan"/>`),
		DeleteSubtree("school/course[0]"),
	)
	if res.Rejected != nil || res.Applied != 3 {
		t.Fatalf("batch: applied=%d rejected=%+v", res.Applied, res.Rejected)
	}
	if s.Elements() != 5 {
		t.Fatalf("elements=%d, want 5", s.Elements())
	}
}

func TestSpecOpenSessionInvalidDocument(t *testing.T) {
	spec := sessionSpec(t)
	doc := `<school><teacher name="ada"/><course taught_by="zed"/></school>`
	_, err := spec.OpenSession(context.Background(), strings.NewReader(doc))
	ide, ok := err.(*InvalidDocumentError)
	if !ok {
		t.Fatalf("got %v, want *InvalidDocumentError", err)
	}
	if len(ide.Report.Violations) == 0 {
		t.Fatal("error carries no violations")
	}
}

func TestSpecOpenSessionMalformed(t *testing.T) {
	spec := sessionSpec(t)
	if _, err := spec.OpenSession(context.Background(), strings.NewReader("<school><oops")); err == nil {
		t.Fatal("malformed document accepted")
	}
}
