package xic

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"xic/internal/dtd"
	"xic/internal/ilp"
	"xic/internal/reduction"
)

// TestSpecConcurrentUse shares one compiled Spec between many goroutines
// mixing every serving method; run under -race this is the concurrency
// contract of the API. The per-DTD state (simplification, encoding
// template, conformance automata) is compiled once and only read
// afterwards, so no synchronisation beyond Compile is needed by callers.
func TestSpecConcurrentUse(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	keysOnly, err := ParseConstraints("teacher.name -> teacher\nsubject.taught_by -> subject")
	if err != nil {
		t.Fatalf("ParseConstraints: %v", err)
	}
	doc, err := ParseDocumentString(`
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="a">XML</subject>
      <subject taught_by="b">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
</teachers>`)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}

	const goroutines = 12
	const rounds = 5
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (g + r) % 4 {
				case 0:
					res, err := spec.Consistent(ctx)
					if err != nil {
						errs <- err
					} else if res.Consistent {
						errs <- errors.New("Σ1 must stay inconsistent under concurrency")
					}
				case 1:
					res, err := spec.WithOptions(Options{SkipWitness: true}).ConsistentWith(ctx)
					if err != nil {
						errs <- err
					} else if res.Consistent {
						errs <- errors.New("ConsistentWith(Σ1) must stay inconsistent")
					}
				case 2:
					imp, err := spec.Implies(ctx, UnaryKey("teacher", "name"))
					if err != nil {
						errs <- err
					} else if !imp.Implied {
						errs <- errors.New("Σ1 must imply its own member")
					}
				case 3:
					// Validate only checks DTD conformance plus the two keys
					// the document satisfies; the inconsistent Σ1 makes every
					// document fail on the foreign key, which is also a
					// deterministic answer.
					if err := spec.Validate(context.Background(), doc); err == nil {
						errs <- errors.New("no document can satisfy the inconsistent Σ1")
					}
				}
			}
		}(g)
	}
	// A second spec sharing the DTD exercises independent compiled state,
	// and the keys-only set exercises the linear path concurrently.
	d, _ := ParseDTD(teachersDTD)
	spec2, err := Compile(d, keysOnly...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := spec2.Consistent(ctx)
			if err != nil {
				errs <- err
				return
			}
			if !res.Consistent || res.Witness == nil {
				errs <- errors.New("keys-only set must be consistent with witness")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// hardLIPSpec builds an NP consistency instance whose very first LP
// relaxation takes far longer than the deadlines used in the cancellation
// tests (an exact-rational simplex on a dense random 0/1-LIP gadget).
func hardLIPSpec(t *testing.T) *Spec {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const m, n, pct = 5, 30, 40
	a := make([][]int, m)
	for i := range a {
		a[i] = make([]int, n)
		for j := range a[i] {
			if rng.Intn(100) < pct {
				a[i][j] = 1
			}
		}
	}
	lip, err := reduction.LIPToSpec(a)
	if err != nil {
		t.Fatalf("LIPToSpec: %v", err)
	}
	spec, err := Compile(lip.DTD, lip.Sigma...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Presolve decides this gadget family without ever reaching the simplex,
	// which is exactly what these tests must not let happen: they exercise
	// cancellation inside the LP pivot loop, so pin the raw search.
	return spec.WithOptions(Options{SkipWitness: true, Solver: ilp.Options{DisablePresolve: true}})
}

// TestSpecCancellation proves a context deadline aborts an NP-class
// Consistent call promptly with ErrCanceled instead of running the search
// to completion (the uncancelled instance runs for minutes).
func TestSpecCancellation(t *testing.T) {
	spec := hardLIPSpec(t)
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := spec.Consistent(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should also match context.DeadlineExceeded: %v", err)
	}
	// The deadline reaches inside the LP pivot loop, so the overshoot is
	// bounded by one pivot, not by a full node or solve.
	if elapsed > 30*time.Second {
		t.Errorf("cancellation took %v; deadline was 250ms", elapsed)
	}
}

// TestSpecCancellationPreCancelled: an already-cancelled context fails fast
// before any solving, and matches both sentinels.
func TestSpecCancellationPreCancelled(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := spec.Consistent(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled ∧ context.Canceled, got %v", err)
	}
	if _, err := spec.Implies(ctx, UnaryKey("teacher", "name")); !errors.Is(err, ErrCanceled) {
		t.Errorf("Implies should honor a cancelled context, got %v", err)
	}
}

// TestConsistentAll covers the batch path: many constraint sets sharing
// one compiled encoding, answers in input order.
func TestConsistentAll(t *testing.T) {
	d, err := ParseDTD(teachersDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	base, err := Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sigma, _ := ParseConstraints(sigma1)
	keysOnly, _ := ParseConstraints("teacher.name -> teacher")
	invalid := []Constraint{UnaryKey("teacher", "ghost")} // undeclared attribute

	sets := [][]Constraint{sigma, keysOnly, nil, invalid}
	got := base.WithOptions(Options{SkipWitness: true}).ConsistentAll(context.Background(), sets)
	if len(got) != len(sets) {
		t.Fatalf("got %d results for %d sets", len(got), len(sets))
	}
	if got[0].Err != nil || got[0].Result.Consistent {
		t.Errorf("sets[0] = Σ1 must be inconsistent: %+v", got[0])
	}
	if got[1].Err != nil || !got[1].Result.Consistent {
		t.Errorf("sets[1] = keys-only must be consistent: %+v", got[1])
	}
	if got[2].Err != nil || !got[2].Result.Consistent {
		t.Errorf("sets[2] = ∅ must be consistent: %+v", got[2])
	}
	if got[3].Err == nil || !strings.Contains(got[3].Err.Error(), "ghost") {
		t.Errorf("sets[3] must fail per item on the undeclared attribute, got %+v", got[3])
	}

	// Parallelism is a per-view knob; a serial view must agree.
	serial := base.WithOptions(Options{SkipWitness: true}).WithParallelism(1).ConsistentAll(context.Background(), sets)
	for i := range got {
		gotOK := got[i].Err == nil && got[i].Result.Consistent
		serialOK := serial[i].Err == nil && serial[i].Result.Consistent
		if gotOK != serialOK {
			t.Errorf("parallel and serial batch disagree at %d", i)
		}
	}
}

// TestImpliesAll covers batched implication on the mediator example of the
// paper's introduction.
func TestImpliesAll(t *testing.T) {
	spec := mustSpec(t, `
<!ELEMENT catalog (vendor*, offer*)>
<!ELEMENT vendor EMPTY>
<!ELEMENT offer EMPTY>
<!ATTLIST vendor vid CDATA #REQUIRED>
<!ATTLIST offer vid CDATA #REQUIRED>`, `
vendor.vid -> vendor
offer.vid => vendor.vid`)
	phis := []Constraint{
		UnaryInclusion("offer", "vid", "vendor", "vid"), // restates Σ
		UnaryKey("offer", "vid"),                        // not guaranteed
	}
	got := spec.ImpliesAll(context.Background(), phis)
	if got[0].Err != nil || !got[0].Implication.Implied {
		t.Errorf("phi[0] must be implied: %+v", got[0])
	}
	if got[1].Err != nil || got[1].Implication.Implied {
		t.Errorf("phi[1] must not be implied: %+v", got[1])
	}
	if got[1].Implication != nil && got[1].Implication.Counterexample == nil {
		t.Errorf("unimplied phi should carry a counterexample")
	}
}

// TestBatchCancellation: cancelling the batch context surfaces ErrCanceled
// per item rather than hanging or panicking.
func TestBatchCancellation(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sigma, _ := ParseConstraints(sigma1)
	for i, ans := range spec.ConsistentAll(ctx, [][]Constraint{sigma, sigma}) {
		if !errors.Is(ans.Err, ErrCanceled) {
			t.Errorf("item %d: want ErrCanceled, got %+v", i, ans)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	// DTD error: the bogus token sits on line 3.
	_, err := ParseDTD("<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>\n<!BOGUS a EMPTY>\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Input != "dtd" || pe.Line != 3 {
		t.Errorf("ParseError = %+v, want dtd line 3", pe)
	}
	if pe.Offset <= 0 {
		t.Errorf("ParseError offset = %d, want a real byte offset", pe.Offset)
	}

	// Constraint error: the malformed line is line 2 of the source.
	_, err = ParseConstraints("a.x -> a\nnonsense here\n")
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Input != "constraints" || pe.Line != 2 {
		t.Errorf("ParseError = %+v, want constraints line 2", pe)
	}
	if pe.Offset != len("a.x -> a\n") {
		t.Errorf("ParseError offset = %d, want start of line 2", pe.Offset)
	}

	// Document error: unclosed element.
	_, err = ParseDocumentString("<a><b></a>")
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Input != "document" {
		t.Errorf("ParseError = %+v, want document input", pe)
	}
}

func TestSpecErrorStages(t *testing.T) {
	// DTD stage: content model references an undeclared element type, which
	// DTD.Check rejects at compile time.
	bad := dtd.New("r")
	bad.AddElement("r", dtd.Name{Type: "ghost"})
	_, err := Compile(bad)
	var se *SpecError
	if !errors.As(err, &se) || se.Stage != "dtd" {
		t.Errorf("want SpecError stage dtd, got %v", err)
	}

	// Constraints stage: constraint over an undeclared attribute.
	d, _ := ParseDTD(teachersDTD)
	_, err = Compile(d, UnaryKey("teacher", "ghost"))
	se = nil
	if !errors.As(err, &se) || se.Stage != "constraints" {
		t.Errorf("want SpecError stage constraints, got %v", err)
	}

	// Nil DTD.
	_, err = Compile(nil)
	se = nil
	if !errors.As(err, &se) || se.Stage != "dtd" {
		t.Errorf("want SpecError stage dtd for nil DTD, got %v", err)
	}
	if !strings.Contains(err.Error(), "compile") {
		t.Errorf("SpecError message should mention compile: %v", err)
	}
}

func TestWithOptionsDerivation(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "teacher.name -> teacher")
	skipping := spec.WithOptions(Options{SkipWitness: true})

	res, err := skipping.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Witness != nil {
		t.Error("SkipWitness view must not build witnesses")
	}
	// The original view is unchanged and still builds witnesses.
	res, err = spec.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Witness == nil {
		t.Error("original view must still build witnesses")
	}
}

func TestSpecDiagnose(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	diag, err := spec.Diagnose(context.Background())
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if diag.DTDEmpty {
		t.Fatal("D1 has valid trees")
	}
	// The subject key plus the foreign key alone are already inconsistent
	// with D1, so the minimal core has exactly two members.
	if len(diag.Core) != 2 {
		t.Errorf("minimal core = %v, want 2 members", diag.Core)
	}
}
