// Command xicbench reproduces the paper's evaluation artifacts: the worked
// examples of Sections 1–2 (decision outcomes) and the complexity-results
// table of Figure 5 (empirical scaling series per cell). Output is
// Markdown; EXPERIMENTS.md records a captured run.
//
// Usage:
//
//	xicbench [-full]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"xic"
	"xic/internal/compilebench"
	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/dtd"
	"xic/internal/randgen"
	"xic/internal/reduction"
	"xic/internal/relational"
	"xic/internal/solvebench"
)

var (
	full     = flag.Bool("full", false, "run the larger size series")
	specsDir = flag.String("specs", "specs", "shipped specification corpus for the compile-vs-bind table")
)

func main() {
	flag.Parse()
	fmt.Println("# xicbench — reproduction of Fan & Libkin (JACM 2002)")
	fmt.Println()
	workedExamples()
	figure5()
	batchThroughput()
	compileVsBind()
	presolveAblation()
	fastTableauAblation()
	gadgets()
}

// timeIt measures one decision, repeating short runs for stability.
func timeIt(f func()) time.Duration {
	// Warm once, then take the best of three.
	f()
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func check(d *dtd.DTD, set []xic.Constraint) bool {
	spec, err := xic.Compile(d, set...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xicbench:", err)
		os.Exit(1)
	}
	res, err := spec.WithOptions(xic.Options{SkipWitness: true}).Consistent(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "xicbench:", err)
		os.Exit(1)
	}
	return res.Consistent
}

func workedExamples() {
	fmt.Println("## Worked examples (paper claim vs measured)")
	fmt.Println()
	fmt.Println("| id | artifact | paper | measured |")
	fmt.Println("|----|----------|-------|----------|")

	row := func(id, artifact string, paper string, measured string) {
		fmt.Printf("| %s | %s | %s | %s |\n", id, artifact, paper, measured)
	}

	verdict := func(b bool) string {
		if b {
			return "consistent"
		}
		return "inconsistent"
	}

	row("E1", "D1 + Σ1 (Section 1 teachers)", "inconsistent",
		verdict(check(dtd.Teachers(), constraint.Sigma1())))
	row("E2", "D2 (db → foo → foo …)", "no finite tree",
		map[bool]string{true: "has tree", false: "no finite tree"}[xic.ConsistentDTD(dtd.Infinite())])
	row("E3", "D1 + keys only", "consistent",
		verdict(check(dtd.Teachers(), constraint.MustParse("teacher.name -> teacher\nsubject.taught_by -> subject"))))
	sub := "violated"
	if ok, _ := constraint.SatisfiedAll(figure1(), constraint.Sigma1()); ok {
		sub = "satisfied"
	}
	row("F1", "Figure 1 tree vs Σ1", "violates subject key", "Σ1 "+sub)
	fmt.Println()
}

func figure1() *xic.Tree {
	doc, err := xic.ParseDocumentString(`
<teachers>
 <teacher name="Joe">
  <teach><subject taught_by="Joe">XML</subject><subject taught_by="Joe">DB</subject></teach>
  <research>Web DB</research>
 </teacher>
</teachers>`)
	if err != nil {
		panic(err)
	}
	return doc
}

func figure5() {
	fmt.Println("## Figure 5 — complexity table, empirical series")
	fmt.Println()
	fmt.Println("| cell | procedure | workload | size | outcome | time |")
	fmt.Println("|------|-----------|----------|------|---------|------|")

	sizes := []int{25, 50, 100, 200}
	if *full {
		sizes = []int{50, 100, 200, 400, 800}
	}

	// Linear cells: DTD validity, keys-only consistency, keys-only implication.
	for _, n := range sizes {
		d := randgen.ChainDTD(n)
		dur := timeIt(func() { xic.ConsistentDTD(d) })
		fmt.Printf("| validity | Thm 3.5(1), linear | chain DTD | %d types | %v | %v |\n",
			n+1, xic.ConsistentDTD(d), dur)
	}
	for _, n := range sizes {
		d := randgen.ChainDTD(n)
		keys := randgen.KeySetOver(d)
		dur := timeIt(func() { check(d, keys) })
		fmt.Printf("| consistency, keys only | Thm 3.5(2), linear | chain DTD + keys | %d keys | %v | %v |\n",
			len(keys), true, dur)
	}
	for _, n := range sizes {
		d := randgen.ChainDTD(n)
		var keys []xic.Constraint
		for _, k := range randgen.KeySetOver(d) {
			if k.(constraint.Key).Type != "c1" {
				keys = append(keys, k)
			}
		}
		// c1's key is not subsumed; implication holds because a chain DTD
		// admits at most one c1 node (Lemma 3.7's occurrence test).
		phi := constraint.UnaryKey("c1", "k")
		var implied bool
		dur := timeIt(func() { implied, _ = xic.ImpliesKey(d, keys, phi) })
		fmt.Printf("| implication, keys only | Thm 3.5(3), linear | chain DTD + keys | %d keys | implied=%v | %v |\n",
			len(keys), implied, dur)
	}

	// NP cell: unary keys and foreign keys, teacher families.
	blocks := []int{1, 2, 4, 8}
	if *full {
		blocks = []int{1, 2, 4, 8, 16}
	}
	for _, b := range blocks {
		d := randgen.TeacherFamily(b)
		bad := randgen.TeacherFamilyConstraints(b, true)
		dur := timeIt(func() { check(d, bad) })
		fmt.Printf("| consistency, unary K+FK | Thm 4.7, NP-complete | teacher family (Σ1-style, primary keys) | %d blocks | %v | %v |\n",
			b, check(d, bad), dur)
	}
	for _, b := range blocks {
		d := randgen.TeacherFamily(b)
		good := randgen.TeacherFamilyConstraints(b, false)
		dur := timeIt(func() { check(d, good) })
		fmt.Printf("| consistency, unary K+FK | Thm 4.7, NP-complete | teacher family (keys only variant) | %d blocks | %v | %v |\n",
			b, check(d, good), dur)
	}

	// coNP cell: unary implication by keys *and foreign keys* (the inverted,
	// consistent Σ1 variant), decided by refuting Σ ∧ ¬φ via the encoding.
	ctx := context.Background()
	for _, b := range blocks {
		d := randgen.TeacherFamily(b)
		sigma := randgen.TeacherFamilyConstraints(b, false)
		sigma = append(sigma, constraint.UnaryForeignKey("teacher_0", "name", "subject_0", "taught_by"))
		phi := constraint.UnaryInclusion("subject_0", "taught_by", "teacher_0", "name")
		spec, err := xic.Compile(d, sigma...)
		if err != nil {
			panic(err)
		}
		spec = spec.WithOptions(xic.Options{SkipWitness: true})
		var imp *xic.Implication
		dur := timeIt(func() {
			var err error
			imp, err = spec.Implies(ctx, phi)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| implication, unary | Thm 4.10/5.4, coNP-complete | teacher family + inverted FK | %d blocks | implied=%v | %v |\n",
			b, imp.Implied, dur)
	}

	// Fixed-DTD PTIME cell: one compiled Spec, growing Σ.
	fixedSizes := []int{4, 8, 16, 32}
	d := randgen.WideDTD(4)
	compiled, err := xic.Compile(d)
	if err != nil {
		panic(err)
	}
	compiled = compiled.WithOptions(xic.Options{SkipWitness: true})
	rng := rand.New(rand.NewSource(99))
	for _, k := range fixedSizes {
		set := randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: k / 2, ForeignKeys: k / 4, Inclusions: k / 4})
		var res *xic.Result
		dur := timeIt(func() {
			var err error
			res, err = compiled.ConsistentWith(ctx, set...)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| consistency, fixed DTD | Cor 4.11, PTIME in Σ | wide DTD (compiled Spec), random Σ | %d constraints | %v | %v |\n",
			len(set), res.Consistent, dur)
	}

	// Full class with negations (Thm 5.1).
	for _, k := range []int{2, 4, 8} {
		set := randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: k / 2, Inclusions: k / 2, NegKeys: 1, NegInclusions: 1})
		var res *xic.Result
		dur := timeIt(func() {
			var err error
			res, err = compiled.ConsistentWith(ctx, set...)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| consistency, unary K¬+IC¬ | Thm 5.1, NP-complete | wide DTD, Σ with negations | %d constraints | %v | %v |\n",
			len(set), res.Consistent, dur)
	}
	fmt.Println()
}

// batchThroughput measures the high-throughput serving mode the Spec API
// is designed for: one compiled schema, many independent constraint sets,
// checked sequentially vs. on the bounded worker pool of ConsistentAll.
func batchThroughput() {
	fmt.Println("## Batch throughput — one compiled Spec, many constraint sets")
	fmt.Println()
	fmt.Println("| sets | sequential | ConsistentAll (pooled) |")
	fmt.Println("|------|------------|------------------------|")

	d := randgen.WideDTD(4)
	spec, err := xic.Compile(d)
	if err != nil {
		panic(err)
	}
	spec = spec.WithOptions(xic.Options{SkipWitness: true})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	sizes := []int{16, 64}
	if *full {
		sizes = []int{16, 64, 256}
	}
	for _, n := range sizes {
		sets := make([][]xic.Constraint, n)
		for i := range sets {
			sets[i] = randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: 2, ForeignKeys: 1, Inclusions: 1})
		}
		seq := timeIt(func() {
			for _, set := range sets {
				if _, err := spec.ConsistentWith(ctx, set...); err != nil {
					panic(err)
				}
			}
		})
		pooled := timeIt(func() {
			for _, ans := range spec.ConsistentAll(ctx, sets) {
				if ans.Err != nil {
					panic(ans.Err)
				}
			}
		})
		fmt.Printf("| %d | %v | %v |\n", n, seq, pooled)
	}
	fmt.Println()
}

// compileVsBind measures the two-stage split over the shipped specs/
// corpus: cold xic.CompileStrings plus the case's serving check against
// Schema.BindStrings on a schema compiled once plus the same check. The
// corpus is internal/compilebench's — the same cases BENCH_compile.json is
// recorded over and CI gates, so this table describes the numbers the gate
// enforces. The implication-sweep cases are answered by the schema's
// memoized cache on the warm side, which is the serving behaviour the
// two-stage API exists for.
func compileVsBind() {
	fmt.Println("## Compile vs Bind — one schema, many constraint sets")
	fmt.Println()
	corpus, err := compilebench.Corpus(*specsDir)
	if err != nil {
		fmt.Printf("(corpus unavailable: %v — run from the repository root or pass -specs)\n\n", err)
		return
	}
	fmt.Println("| case | cold Compile+check | warm Bind+check | speedup |")
	fmt.Println("|------|--------------------|-----------------|---------|")
	ctx := context.Background()
	for _, c := range corpus {
		schema, err := c.CompileSchema()
		if err != nil {
			panic(err)
		}
		cold := compilebench.BestOf(func() {
			if err := c.Cold(ctx); err != nil {
				panic(err)
			}
		})
		warm := compilebench.BestOf(func() {
			if err := c.Warm(ctx, schema); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %s | %v | %v | %.1fx |\n", c.Name, cold, warm, float64(cold)/float64(warm))
	}
	fmt.Println()
}

// presolveAblation measures the solve pipeline with the presolve +
// fast-path layer on and off, per corpus case: the wall-time column pair
// is the layer's win, the stats columns say where it came from (rows and
// conditionals eliminated, variables fixed before any simplex pivot).
// The corpus is internal/solvebench's — the same cases BENCH_solve.json
// is recorded over and CI gates, so this table describes the numbers the
// gate enforces.
func presolveAblation() {
	fmt.Println("## Presolve ablation — solver wall time with the layer on vs off")
	fmt.Println()
	fmt.Println("| case | presolved | raw | speedup | presolve decided/fastpath | vars fixed |")
	fmt.Println("|------|-----------|-----|---------|---------------------------|------------|")

	corpus, err := solvebench.Corpus(*full)
	if err != nil {
		panic(err)
	}
	for _, c := range corpus {
		run := func(presolveOn bool) {
			if _, err := c.Run(solvebench.Options(presolveOn)); err != nil {
				panic(err)
			}
		}
		before := c.Checker.SolveStats()
		pre := solvebench.BestOf(func() { run(true) })
		after := c.Checker.SolveStats()
		raw := solvebench.BestOf(func() { run(false) })
		decided := (after.PresolveDecided - before.PresolveDecided) / solvebench.Runs
		fast := (after.FastPath - before.FastPath) / solvebench.Runs
		fixed := (after.VarsFixed - before.VarsFixed) / solvebench.Runs
		fmt.Printf("| %s | %v | %v | %.2fx | %d/%d | %d |\n",
			c.Name, pre, raw, float64(raw)/float64(pre), decided, fast, fixed)
	}
	fmt.Println()
}

// fastTableauAblation isolates the simplex-kernel contribution: both sides
// run the serving configuration (presolve on), one on the overflow-checked
// int64 fast tableau, the other forced onto the exact big.Rat kernel. The
// pivot columns show how the work split — fast pivots answered on int64,
// exact fallbacks where a magnitude overflow pushed an LP back to big.Rat.
func fastTableauAblation() {
	fmt.Println("## Fast-tableau ablation — int64 kernel vs exact big.Rat kernel")
	fmt.Println()
	fmt.Println("| case | fast | exact | speedup | fast pivots | exact fallbacks |")
	fmt.Println("|------|------|-------|---------|-------------|-----------------|")

	corpus, err := solvebench.Corpus(*full)
	if err != nil {
		panic(err)
	}
	for _, c := range corpus {
		run := func(fastOn bool) {
			if _, err := c.Run(solvebench.FastOptions(fastOn)); err != nil {
				panic(err)
			}
		}
		before := c.Checker.SolveStats()
		fastDur := solvebench.BestOf(func() { run(true) })
		after := c.Checker.SolveStats()
		exactDur := solvebench.BestOf(func() { run(false) })
		fastPivots := (after.FastPivots - before.FastPivots) / solvebench.Runs
		fallbacks := (after.ExactFallbacks - before.ExactFallbacks) / solvebench.Runs
		fmt.Printf("| %s | %v | %v | %.2fx | %d | %d |\n",
			c.Name, fastDur, exactDur, float64(exactDur)/float64(fastDur), fastPivots, fallbacks)
	}
	fmt.Println()
}

func gadgets() {
	fmt.Println("## Lower-bound gadgets (undecidable and NP-hard cells)")
	fmt.Println()
	fmt.Println("| cell | reduction | size | time to construct | note |")
	fmt.Println("|------|-----------|------|-------------------|------|")

	// Theorem 3.1: relational implication → XML consistency (construction
	// only — the target problem is undecidable).
	for _, n := range []int{5, 10, 20} {
		s := relational.NewSchema()
		var theta []relational.Dependency
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("R%d", i)
			s.AddRelation(name, "a", "b", "c")
			theta = append(theta, relational.Key{Rel: name, Attrs: []string{"a"}})
		}
		phi := relational.Key{Rel: "R0", Attrs: []string{"b"}}
		dur := timeIt(func() {
			if _, err := reduction.RelationalToXML(s, theta, phi); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| consistency, multi-attr K+FK | Thm 3.1 (undecidable) | %d relations | %v | construction only |\n", n, dur)
	}

	// Lemma 3.3: consistency → implication.
	for _, b := range []int{1, 4, 16} {
		d := randgen.TeacherFamily(b)
		sigma := randgen.TeacherFamilyConstraints(b, true)
		dur := timeIt(func() {
			if _, err := reduction.ConsistencyToKeyImplication(d, sigma); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| implication, multi-attr K+FK | Lemma 3.3 (undecidable) | %d blocks | %v | construction only |\n", b, dur)
	}

	// Theorem 4.7: 0/1-LIP instances through the gadget, solved end-to-end.
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{2, 3}, {3, 4}, {4, 5}} {
		a := randgen.RandLIP01(rng, shape[0], shape[1], 50)
		spec, err := reduction.LIPToSpec(a)
		if err != nil {
			panic(err)
		}
		var res *core.Result
		dur := timeIt(func() {
			res, err = core.Consistent(spec.DTD, spec.Sigma, &core.Options{SkipWitness: true})
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| NP-hardness gadget | Thm 4.7: 0/1-LIP %dx%d | %d constraints | %v | solvable=%v |\n",
			shape[0], shape[1], len(spec.Sigma), dur, res.Consistent)
	}
	fmt.Println()
}
