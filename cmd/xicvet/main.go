// Command xicvet runs the project's static-analysis suite (see
// internal/analysis and the README's "Static analysis" section) over Go
// package patterns and reports invariant violations in vet format:
//
//	xicvet ./...
//	xicvet -list
//	xicvet -tests -C /path/to/module ./internal/...
//	xicvet -json ./... | jq .
//
// It exits 1 when any analyzer reports a finding, so CI can use it as a
// blocking gate. Suppress a deliberate exception at the finding site with
// an `//xic:ignore <analyzer> <reason>` comment; malformed directives
// (unknown analyzer, missing reason) are themselves findings.
//
// -tests extends the analysis to _test.go files (CI runs with it on);
// -json emits one JSON object per finding per line, for tooling; -nocache
// bypasses the go-list result cache under os.UserCacheDir()/xicvet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"xic/internal/analysis"
	"xic/internal/analysis/load"
	"xic/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Options configures one Vet invocation.
type Options struct {
	// Dir is the module directory to analyze.
	Dir string
	// Tests includes _test.go files in the analysis.
	Tests bool
	// NoCache bypasses the go-list result cache.
	NoCache bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xicvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	dir := fs.String("C", ".", "run in this directory (the module to analyze)")
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	jsonOut := fs.Bool("json", false, "emit findings as JSON, one object per line")
	nocache := fs.Bool("nocache", false, "bypass the go-list result cache")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, fromCache, err := Vet(Options{Dir: *dir, Tests: *tests, NoCache: *nocache}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "xicvet: %v\n", err)
		return 2
	}
	// Surface the go-list cache outcome so CI logs show whether the
	// persisted cache (see .github/workflows/ci.yml) actually paid off.
	switch {
	case *nocache:
		fmt.Fprintln(stderr, "xicvet: go list cache bypassed (-nocache)")
	case fromCache:
		fmt.Fprintln(stderr, "xicvet: go list cache hit")
	default:
		fmt.Fprintln(stderr, "xicvet: go list cache miss")
	}
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(*dir, pos.Filename); err == nil && filepath.IsAbs(pos.Filename) {
			pos.Filename = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "xicvet: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "xicvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the -json wire form of one finding, one object per
// line. The field set is pinned by TestJSONOutput and consumed by the
// GitHub problem matcher in .github/xicvet-problem-matcher.json.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Vet loads the packages matched by patterns and applies the whole suite:
// every analyzer's Collect phase over every module package first (so
// cross-package tables are complete), then Run over the packages the
// patterns actually named, then a directive check that flags malformed
// //xic:ignore comments. Diagnostics come back sorted by position. The
// bool reports whether the go list step was served from the xicvet cache.
func Vet(opts Options, patterns ...string) ([]analysis.Diagnostic, bool, error) {
	prog, err := load.Load(load.Config{Dir: opts.Dir, Tests: opts.Tests, NoCache: opts.NoCache}, patterns...)
	if err != nil {
		return nil, false, err
	}

	var diags []analysis.Diagnostic
	record := func(d analysis.Diagnostic) { diags = append(diags, d) }

	analyzers := suite.Analyzers()
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range prog.Packages {
			pass := analysis.NewPass(a, prog.Fset, pkg.Syntax, pkg.Types, pkg.Info, record)
			if err := a.Collect(pass); err != nil {
				return nil, prog.FromCache, fmt.Errorf("%s: collect %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			if pkg.DepOnly {
				continue
			}
			pass := analysis.NewPass(a, prog.Fset, pkg.Syntax, pkg.Types, pkg.Info, record)
			if err := a.Run(pass); err != nil {
				return nil, prog.FromCache, fmt.Errorf("%s: run %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range prog.Packages {
		if pkg.DepOnly {
			continue
		}
		diags = append(diags, analysis.CheckDirectives(prog.Fset, pkg.Syntax, known)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, prog.FromCache, nil
}
