package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListsFiveAnalyzers pins the registered suite: exactly the five
// documented analyzers, in order.
func TestListsFiveAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("xicvet -list exited %d: %s", code, stderr.String())
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		name, _, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("malformed -list line %q", line)
		}
		names = append(names, name)
	}
	want := []string{"ctxflow", "frozen", "ratalias", "atomicfield", "errtaxonomy"}
	if len(names) != len(want) {
		t.Fatalf("got %d analyzers %v, want %v", len(names), names, want)
	}
	for i, name := range names {
		if name != want[i] {
			t.Fatalf("analyzer %d = %q, want %q (full list %v)", i, name, want[i], names)
		}
	}
}

// TestRepoIsClean runs the whole suite over the real module: the tree must
// stay free of findings, since CI runs the same command as a blocking
// gate.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := Vet("../..", "./...")
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestSeededViolationFails builds a throwaway module containing a frozen
// violation and asserts the gate trips: acceptance that seeding a bug
// makes the CI vet job fail.
func TestSeededViolationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.21\n")
	write("seed.go", `// Package seeded seeds one frozen violation.
package seeded

// Config is published at startup.
//
// xic:frozen
type Config struct{ N int }

// New is the constructor.
func New() *Config { return &Config{N: 1} }

// Tweak mutates after publish: the violation under test.
func Tweak(c *Config) { c.N = 2 }
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "frozen: write to field N of frozen type Config") {
		t.Fatalf("missing frozen finding in output:\n%s", stdout.String())
	}
}
