package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestListsThirteenAnalyzers pins the registered suite: exactly the
// thirteen documented analyzers, in order — the original five invariant
// checkers, the concurrency pack, and the interprocedural pack built on
// the call-graph/summary layer.
func TestListsThirteenAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("xicvet -list exited %d: %s", code, stderr.String())
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		name, _, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("malformed -list line %q", line)
		}
		names = append(names, name)
	}
	want := []string{
		"ctxflow", "frozen", "ratalias", "atomicfield", "errtaxonomy",
		"lockorder", "lockbalance", "goleak", "chandisc",
		"hotalloc", "hotrecurse", "blockhold", "httpguard",
	}
	if len(names) != len(want) {
		t.Fatalf("got %d analyzers %v, want %v", len(names), names, want)
	}
	for i, name := range names {
		if name != want[i] {
			t.Fatalf("analyzer %d = %q, want %q (full list %v)", i, name, want[i], names)
		}
	}
}

// TestRepoIsClean runs the whole suite over the real module, test files
// included: the tree must stay free of findings, since CI runs the same
// command as a blocking gate.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, _, err := Vet(Options{Dir: "../..", Tests: true}, "./...")
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// seedModule writes a throwaway module with the given source file and
// returns its directory.
func seedModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.21\n")
	write("seed.go", src)
	return dir
}

// TestSeededViolationFails builds a throwaway module containing a frozen
// violation and asserts the gate trips: acceptance that seeding a bug
// makes the CI vet job fail.
func TestSeededViolationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded seeds one frozen violation.
package seeded

// Config is published at startup.
//
// xic:frozen
type Config struct{ N int }

// New is the constructor.
func New() *Config { return &Config{N: 1} }

// Tweak mutates after publish: the violation under test.
func Tweak(c *Config) { c.N = 2 }
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "frozen: write to field N of frozen type Config") {
		t.Fatalf("missing frozen finding in output:\n%s", stdout.String())
	}
}

// TestSeededLockInversionFails seeds the canonical AB/BA deadlock and
// asserts the vet gate trips on it: the acceptance criterion for the
// parallel-solver prerequisite.
func TestSeededLockInversionFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded seeds a lock-order inversion.
package seeded

import "sync"

var a, b sync.Mutex

// AB nests b under a.
func AB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

// BA nests a under b: together with AB this deadlocks under contention.
func BA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "lockorder: lock order inversion") {
		t.Fatalf("missing lockorder finding in output:\n%s", stdout.String())
	}
}

// TestSeededGoroutineLeakFails seeds a goroutine with no termination
// signal and asserts the vet gate trips on it.
func TestSeededGoroutineLeakFails(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded seeds a leaked goroutine.
package seeded

// Spawn starts a goroutine nothing can stop or await.
func Spawn(work []int) {
	go func() {
		for range work {
		}
	}()
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "goleak: goroutine has no termination signal") {
		t.Fatalf("missing goleak finding in output:\n%s", stdout.String())
	}
}

// TestJSONOutput pins the -json wire shape: one object per line with
// file, line, col, analyzer, and message fields.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded seeds a leaked goroutine for the JSON test.
package seeded

// Spawn starts a goroutine nothing can stop or await.
func Spawn() {
	go func() {}()
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON output")
	}
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q is not a JSON diagnostic: %v", line, err)
		}
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic %+v from line %q", d, line)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("file %q should be relative to the -C directory", d.File)
		}
	}
	found := false
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err == nil && d.Analyzer == "goleak" && d.File == "seed.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a goleak diagnostic for seed.go, got:\n%s", stdout.String())
	}
}

// TestMalformedDirectiveIsAFinding asserts the driver-level directive
// check: naming an unknown analyzer or omitting the reason is itself a
// finding, so dead suppressions cannot ship silently.
func TestMalformedDirectiveIsAFinding(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded carries two malformed suppressions.
package seeded

// A is fine on its own.
func A() int {
	//xic:ignore gofleak typo'd analyzer name
	x := 1
	//xic:ignore goleak
	return x
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `unknown analyzer "gofleak"`) {
		t.Errorf("missing unknown-analyzer finding:\n%s", out)
	}
	if !strings.Contains(out, "has no reason and suppresses nothing") {
		t.Errorf("missing missing-reason finding:\n%s", out)
	}
}

// TestDirectivesKnowNewAnalyzers asserts the driver's known-name set
// tracks the interprocedural pack: suppressions naming the new analyzers
// are accepted, and a near-miss of a new name is flagged as unknown just
// like a typo of an original one.
func TestDirectivesKnowNewAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded names new-pack analyzers in suppressions.
package seeded

// A carries one valid (if unused) suppression per new analyzer and one
// typo'd name that must be flagged.
func A() int {
	//xic:ignore hotalloc deliberate exception for the directive test
	//xic:ignore hotrecurse deliberate exception for the directive test
	//xic:ignore blockhold deliberate exception for the directive test
	//xic:ignore httpguard deliberate exception for the directive test
	//xic:ignore hotallocs typo'd new-analyzer name
	return 1
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `unknown analyzer "hotallocs"`) {
		t.Errorf("missing unknown-analyzer finding for the typo'd name:\n%s", out)
	}
	for _, name := range []string{"hotalloc", "hotrecurse", "blockhold", "httpguard"} {
		if strings.Contains(out, "unknown analyzer \""+name+"\"") {
			t.Errorf("directive naming %s was rejected as unknown:\n%s", name, out)
		}
	}
}

// TestTestsFlagExtendsCoverage seeds a violation that lives only in a
// _test.go file: invisible without -tests, a finding with it.
func TestTestsFlagExtendsCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded is clean; its test file is not.
package seeded

// A does nothing.
func A() {}
`)
	// A lock-order inversion confined to the test file; lockorder does not
	// relax in test files, so -tests must surface it.
	testSrc := `package seeded

import (
	"sync"
	"testing"
)

var a, b sync.Mutex

func TestAB(t *testing.T) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func TestBA(t *testing.T) {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
`
	if err := os.WriteFile(filepath.Join(dir, "seed_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("without -tests: exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-tests", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("with -tests: exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "lockorder: lock order inversion") {
		t.Fatalf("missing lockorder finding from test file:\n%s", stdout.String())
	}
}

// TestProblemMatcherMatchesOutput pins the contract between xicvet's
// plain output and the GitHub problem matcher: every finding line must
// match the committed regex, and the captured file/line/column/code/
// message groups must agree with the -json fields for the same findings.
// A drift in either the output format or the matcher regex fails here
// before it silently stops annotating PRs.
func TestProblemMatcherMatchesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", ".github", "xicvet-problem-matcher.json"))
	if err != nil {
		t.Fatalf("reading problem matcher: %v", err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Owner   string `json:"owner"`
			Pattern []struct {
				Regexp  string `json:"regexp"`
				File    int    `json:"file"`
				Line    int    `json:"line"`
				Column  int    `json:"column"`
				Code    int    `json:"code"`
				Message int    `json:"message"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(raw, &matcher); err != nil {
		t.Fatalf("decoding problem matcher: %v", err)
	}
	if len(matcher.ProblemMatcher) != 1 || len(matcher.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("expected one matcher with one pattern, got %+v", matcher)
	}
	pat := matcher.ProblemMatcher[0].Pattern[0]
	re, err := regexp.Compile(pat.Regexp)
	if err != nil {
		t.Fatalf("matcher regexp does not compile: %v", err)
	}

	// Two findings from different analyzers on one line keeps the
	// cross-check honest about ordering.
	dir := seedModule(t, `// Package seeded seeds a goleak finding for the matcher test.
package seeded

// Spawn starts a goroutine nothing can stop or await.
func Spawn() {
	go func() {}()
}
`)

	var plain, jsonOut, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &plain, &stderr); code != 1 {
		t.Fatalf("plain run: exit %d\n%s", code, stderr.String())
	}
	if code := run([]string{"-C", dir, "-json", "./..."}, &jsonOut, &stderr); code != 1 {
		t.Fatalf("json run: exit %d\n%s", code, stderr.String())
	}

	plainLines := strings.Split(strings.TrimSpace(plain.String()), "\n")
	jsonLines := strings.Split(strings.TrimSpace(jsonOut.String()), "\n")
	if len(plainLines) != len(jsonLines) {
		t.Fatalf("plain output has %d lines, -json has %d", len(plainLines), len(jsonLines))
	}
	for i, line := range plainLines {
		groups := re.FindStringSubmatch(line)
		if groups == nil {
			t.Errorf("finding line does not match the problem matcher regex %q:\n%s", pat.Regexp, line)
			continue
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(jsonLines[i]), &d); err != nil {
			t.Fatalf("json line %q: %v", jsonLines[i], err)
		}
		if groups[pat.File] != d.File {
			t.Errorf("matcher file = %q, json file = %q (line %s)", groups[pat.File], d.File, line)
		}
		if groups[pat.Line] != strconv.Itoa(d.Line) {
			t.Errorf("matcher line = %q, json line = %d (line %s)", groups[pat.Line], d.Line, line)
		}
		if groups[pat.Column] != strconv.Itoa(d.Col) {
			t.Errorf("matcher column = %q, json col = %d (line %s)", groups[pat.Column], d.Col, line)
		}
		if groups[pat.Code] != d.Analyzer {
			t.Errorf("matcher code = %q, json analyzer = %q (line %s)", groups[pat.Code], d.Analyzer, line)
		}
		if groups[pat.Message] != d.Message {
			t.Errorf("matcher message = %q, json message = %q (line %s)", groups[pat.Message], d.Message, line)
		}
	}
}

// TestCacheRoundTrip exercises the go-list cache: a second identical run
// must be served from the cache, a -nocache run must not touch it, and
// the cached result must agree with the live one.
func TestCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := seedModule(t, `// Package seeded seeds a leaked goroutine for the cache test.
package seeded

// Spawn starts a goroutine nothing can stop or await.
func Spawn() {
	go func() {}()
}
`)
	cacheDir := t.TempDir()
	t.Setenv("XDG_CACHE_HOME", cacheDir)

	var first, second, third bytes.Buffer
	var firstErr, secondErr, thirdErr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &first, &firstErr); code != 1 {
		t.Fatalf("first run: exit %d\n%s", code, firstErr.String())
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "xicvet", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entry written under %s (err=%v)", cacheDir, err)
	}
	if !strings.Contains(firstErr.String(), "go list cache miss") {
		t.Errorf("first run should log a cache miss, got stderr:\n%s", firstErr.String())
	}
	if code := run([]string{"-C", dir, "./..."}, &second, &secondErr); code != 1 {
		t.Fatalf("second run: exit %d\n%s", code, secondErr.String())
	}
	if first.String() != second.String() {
		t.Errorf("cached run disagrees with live run:\n--- live\n%s--- cached\n%s", first.String(), second.String())
	}
	if !strings.Contains(secondErr.String(), "go list cache hit") {
		t.Errorf("second run should log a cache hit, got stderr:\n%s", secondErr.String())
	}
	if code := run([]string{"-C", dir, "-nocache", "./..."}, &third, &thirdErr); code != 1 {
		t.Fatalf("nocache run: exit %d\n%s", code, thirdErr.String())
	}
	if first.String() != third.String() {
		t.Errorf("-nocache run disagrees:\n--- live\n%s--- nocache\n%s", first.String(), third.String())
	}
	if !strings.Contains(thirdErr.String(), "go list cache bypassed") {
		t.Errorf("-nocache run should log the bypass, got stderr:\n%s", thirdErr.String())
	}
}
