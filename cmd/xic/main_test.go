package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the xic binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xic")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// run executes the binary and returns combined output and exit code.
func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("exec: %v\n%s", err, out)
	return "", -1
}

func specPath(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "specs", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("missing spec file %s: %v", name, err)
	}
	return p
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	teachersDTD := specPath(t, "teachers.dtd")
	teachersXIC := specPath(t, "teachers.xic")
	schoolDTD := specPath(t, "school.dtd")
	schoolXIC := specPath(t, "school.xic")
	schoolXML := specPath(t, "school.xml")

	t.Run("check inconsistent", func(t *testing.T) {
		out, code := run(t, bin, "check", "-dtd", teachersDTD, "-constraints", teachersXIC)
		if code != 1 || !strings.Contains(out, "INCONSISTENT") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("check consistent with witness", func(t *testing.T) {
		w := filepath.Join(t.TempDir(), "w.xml")
		out, code := run(t, bin, "check", "-dtd", teachersDTD, "-witness", w)
		if code != 0 || !strings.Contains(out, "CONSISTENT") {
			t.Fatalf("exit=%d out=%q", code, out)
		}
		data, err := os.ReadFile(w)
		if err != nil || !strings.Contains(string(data), "<teachers>") {
			t.Errorf("witness file: %v %q", err, data)
		}
	})

	t.Run("check with timeout flag", func(t *testing.T) {
		out, code := run(t, bin, "check", "-dtd", teachersDTD, "-constraints", teachersXIC,
			"-skip-witness", "-timeout", "1m")
		if code != 1 || !strings.Contains(out, "INCONSISTENT") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("validate", func(t *testing.T) {
		out, code := run(t, bin, "validate", "-dtd", schoolDTD, "-constraints", schoolXIC, "-doc", schoolXML)
		if code != 0 || !strings.Contains(out, "VALID") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("imply with counterexample", func(t *testing.T) {
		ce := filepath.Join(t.TempDir(), "ce.xml")
		out, code := run(t, bin, "imply", "-dtd", schoolDTD,
			"-query", "student.student_id -> student", "-counterexample", ce)
		if code != 1 || !strings.Contains(out, "NOT IMPLIED") {
			t.Fatalf("exit=%d out=%q", code, out)
		}
		if _, err := os.Stat(ce); err != nil {
			t.Errorf("counterexample not written: %v", err)
		}
	})

	t.Run("simplify", func(t *testing.T) {
		out, code := run(t, bin, "simplify", "-dtd", teachersDTD)
		if code != 0 || !strings.Contains(out, "<!ELEMENT teachers") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("encode", func(t *testing.T) {
		out, code := run(t, bin, "encode", "-dtd", teachersDTD, "-constraints", teachersXIC)
		if code != 0 || !strings.Contains(out, "ext(teachers) = 1") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("encode bigm", func(t *testing.T) {
		out, code := run(t, bin, "encode", "-dtd", teachersDTD, "-constraints", teachersXIC, "-bigm")
		if code != 0 || !strings.Contains(out, "A·x ≥ b") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("class", func(t *testing.T) {
		out, code := run(t, bin, "class", "-constraints", schoolXIC)
		if code != 0 || !strings.Contains(out, "C_{K,FK}") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("usage errors", func(t *testing.T) {
		if _, code := run(t, bin, "check"); code != 2 {
			t.Errorf("missing -dtd should exit 2, got %d", code)
		}
		if _, code := run(t, bin, "nonsense"); code != 2 {
			t.Errorf("unknown command should exit 2, got %d", code)
		}
	})
}

// TestCLIValidateStream exercises the streaming validation mode end to end:
// a valid fixture, an invalid in-memory document with line-numbered
// violations, and verdict agreement with the tree mode.
func TestCLIValidateStream(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	schoolDTD := specPath(t, "school.dtd")
	schoolXIC := specPath(t, "school.xic")
	schoolXML := specPath(t, "school.xml")

	t.Run("valid fixture", func(t *testing.T) {
		out, code := run(t, bin, "validate", "-dtd", schoolDTD, "-constraints", schoolXIC, "-doc", schoolXML, "-stream")
		if code != 0 || !strings.Contains(out, "VALID") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})

	t.Run("verdicts agree with tree mode", func(t *testing.T) {
		_, treeCode := run(t, bin, "validate", "-dtd", schoolDTD, "-constraints", schoolXIC, "-doc", schoolXML)
		_, streamCode := run(t, bin, "validate", "-dtd", schoolDTD, "-constraints", schoolXIC, "-doc", schoolXML, "-stream")
		if treeCode != streamCode {
			t.Errorf("tree exit=%d stream exit=%d", treeCode, streamCode)
		}
	})

	t.Run("timeout honored in both modes", func(t *testing.T) {
		// An expired 1ns deadline must abort either mode with a processing
		// error (exit 2) that names the deadline — not a bogus verdict.
		for _, mode := range [][]string{nil, {"-stream"}} {
			args := append([]string{"validate", "-dtd", schoolDTD, "-constraints", schoolXIC,
				"-doc", schoolXML, "-timeout", "1ns"}, mode...)
			out, code := run(t, bin, args...)
			if code != 2 || !strings.Contains(out, "deadline") {
				t.Errorf("mode %v: exit=%d out=%q, want exit 2 naming the deadline", mode, code, out)
			}
		}
	})

	t.Run("invalid document lists violations", func(t *testing.T) {
		dtdFile := filepath.Join(t.TempDir(), "db.dtd")
		xicFile := filepath.Join(t.TempDir(), "db.xic")
		docFile := filepath.Join(t.TempDir(), "db.xml")
		writeFile(t, dtdFile, "<!ELEMENT db (rec*)>\n<!ELEMENT rec EMPTY>\n<!ATTLIST rec id CDATA #REQUIRED>\n")
		writeFile(t, xicFile, "rec.id -> rec\n")
		writeFile(t, docFile, "<db>\n<rec id=\"1\"/>\n<rec id=\"1\"/>\n</db>\n")
		out, code := run(t, bin, "validate", "-dtd", dtdFile, "-constraints", xicFile, "-doc", docFile, "-stream")
		if code != 1 || !strings.Contains(out, "INVALID") || !strings.Contains(out, "line 3") {
			t.Errorf("exit=%d out=%q", code, out)
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCLIMultiConstraintSets exercises the repeatable -constraints mode:
// the DTD compiles once, every set binds against the shared schema, and
// the exit status reflects the worst verdict.
func TestCLIMultiConstraintSets(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	teachersDTD := specPath(t, "teachers.dtd")
	teachersXIC := specPath(t, "teachers.xic")

	// A second, consistent set over the same DTD.
	keysOnly := filepath.Join(t.TempDir(), "keys.xic")
	if err := os.WriteFile(keysOnly, []byte("teacher.name -> teacher\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, code := run(t, bin, "check",
		"-dtd", teachersDTD, "-constraints", teachersXIC, "-constraints", keysOnly)
	if code != 1 {
		t.Fatalf("one inconsistent set must exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, teachersXIC+": INCONSISTENT") {
		t.Errorf("missing per-file inconsistent verdict:\n%s", out)
	}
	if !strings.Contains(out, keysOnly+": CONSISTENT") {
		t.Errorf("missing per-file consistent verdict:\n%s", out)
	}

	// All sets consistent: exit 0.
	out, code = run(t, bin, "check", "-dtd", teachersDTD,
		"-constraints", keysOnly, "-constraints", keysOnly)
	if code != 0 {
		t.Fatalf("all-consistent multi check must exit 0, got %d:\n%s", code, out)
	}

	// -witness is a single-set feature.
	if out, code = run(t, bin, "check", "-dtd", teachersDTD,
		"-constraints", keysOnly, "-constraints", keysOnly, "-witness", "w.xml"); code != 2 {
		t.Fatalf("multi -constraints with -witness must exit 2, got %d:\n%s", code, out)
	}

	// imply under several Σ sets: implied by its own member, not by Σ1?
	// Σ1 is inconsistent, so everything is (vacuously) implied by it too.
	out, code = run(t, bin, "imply", "-dtd", teachersDTD,
		"-constraints", teachersXIC, "-constraints", keysOnly,
		"-query", "teacher.name -> teacher")
	if code != 0 {
		t.Fatalf("imply under both sets must exit 0, got %d:\n%s", code, out)
	}
	if strings.Count(out, "IMPLIED") != 2 {
		t.Errorf("want one IMPLIED line per set:\n%s", out)
	}
}
