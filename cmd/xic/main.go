// Command xic statically validates XML specifications: DTDs plus key,
// foreign-key and inclusion constraints, per Fan & Libkin (JACM 2002).
//
// Usage:
//
//	xic check    -dtd spec.dtd -constraints spec.xic [-constraints more.xic ...] [-witness out.xml] [-skip-witness] [-max-solver-nodes N] [-solver-par N] [-exact] [-timeout d]
//	xic imply    -dtd spec.dtd -constraints spec.xic [-constraints more.xic ...] -query "constraint" [-counterexample out.xml] [-solver-par N] [-exact] [-timeout d]
//	xic validate -dtd spec.dtd [-constraints spec.xic] -doc doc.xml [-stream] [-timeout d]
//	xic simplify -dtd spec.dtd
//	xic encode   -dtd spec.dtd [-constraints spec.xic] [-bigm]
//	xic class    -constraints spec.xic
//
// check and imply compile the specification once and run the decision
// under a context: -timeout bounds the NP search, turning an adversarial
// instance into a clean "deadline exceeded" failure instead of a hung
// process.
//
// -constraints may be repeated: the DTD is then compiled once
// (xic.CompileDTD) and every constraint file is bound to the shared schema
// (Schema.Bind), answering one verdict per file — the multi-constraint-set
// serving shape of the two-stage API. With a single -constraints the
// commands behave exactly as before.
//
// Exit status: 0 for a positive answer (consistent / implied / valid —
// for every set when several are given), 1 for a negative answer, 2 for
// usage or processing errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xic"
	"xic/internal/cardinality"
	"xic/internal/constraint"
	"xic/internal/dtd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	var negative bool
	switch os.Args[1] {
	case "check":
		negative, err = runCheck(os.Args[2:])
	case "imply":
		negative, err = runImply(os.Args[2:])
	case "validate":
		negative, err = runValidate(os.Args[2:])
	case "simplify":
		err = runSimplify(os.Args[2:])
	case "encode":
		err = runEncode(os.Args[2:])
	case "class":
		err = runClass(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "xic: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xic:", err)
		os.Exit(2)
	}
	if negative {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `xic — static validation of XML specifications (DTD + integrity constraints)

commands:
  check      decide consistency; optionally emit a witness document
  imply      decide implication (D,Σ) ⊢ φ; optionally emit a counterexample
  validate   check one XML document against DTD and constraints (-stream for
             single-pass validation of large documents)
  simplify   print the simple DTD of Section 4.1
  encode     print the cardinality encoding Ψ(D,Σ) (or its big-M matrix)
  class      print the constraint class of a constraint set`)
}

func loadDTD(path string) (*xic.DTD, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -dtd")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return xic.ParseDTD(string(data))
}

// fileList collects a repeatable -constraints flag.
type fileList []string

func (f *fileList) String() string { return strings.Join(*f, ",") }

func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// loadSchemaSpecs compiles the DTD once and binds every constraint file to
// the shared schema, returning the specs in input order. With no files it
// binds the empty set once.
func loadSchemaSpecs(dtdPath string, consPaths []string) (*xic.Schema, []*xic.Spec, error) {
	d, err := loadDTD(dtdPath)
	if err != nil {
		return nil, nil, err
	}
	schema, err := xic.CompileDTD(d)
	if err != nil {
		return nil, nil, err
	}
	if len(consPaths) == 0 {
		spec, err := schema.Bind()
		if err != nil {
			return nil, nil, err
		}
		return schema, []*xic.Spec{spec}, nil
	}
	specs := make([]*xic.Spec, len(consPaths))
	for i, path := range consPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if specs[i], err = schema.BindStrings(string(data)); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return schema, specs, nil
}

func loadConstraints(path string, required bool) ([]xic.Constraint, error) {
	if path == "" {
		if required {
			return nil, fmt.Errorf("missing -constraints")
		}
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return xic.ParseConstraints(string(data))
}

// loadSpec compiles the DTD and constraint files into a Spec.
func loadSpec(dtdPath, consPath string) (*xic.Spec, error) {
	d, err := loadDTD(dtdPath)
	if err != nil {
		return nil, err
	}
	set, err := loadConstraints(consPath, false)
	if err != nil {
		return nil, err
	}
	return xic.Compile(d, set...)
}

// checkContext turns a -timeout value into a context.
func checkContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

func runCheck(args []string) (negative bool, err error) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "DTD file")
	var consPaths fileList
	fs.Var(&consPaths, "constraints", "constraint file (repeat to check several sets against one compiled schema)")
	witnessPath := fs.String("witness", "", "write a witness document here when consistent (single set only)")
	skipWitness := fs.Bool("skip-witness", false, "decision only, no witness construction")
	maxNodes := fs.Int("max-solver-nodes", 0, "branch-and-bound node budget (0 = default)")
	solverPar := fs.Int("solver-par", 0, "branch-and-bound worker goroutines (0 = serial)")
	exact := fs.Bool("exact", false, "force the exact big.Rat simplex kernel (skip the int64 fast tableau)")
	timeout := fs.Duration("timeout", 0, "abort the NP search after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	multi := len(consPaths) > 1
	if multi && *witnessPath != "" {
		return false, fmt.Errorf("-witness requires a single -constraints file")
	}
	_, specs, err := loadSchemaSpecs(*dtdPath, consPaths)
	if err != nil {
		return false, err
	}
	opts := []xic.SolveOption{
		xic.WithMaxNodes(*maxNodes),
		xic.WithSolverParallelism(*solverPar),
	}
	if (*skipWitness && *witnessPath == "") || multi {
		opts = append(opts, xic.WithSkipWitness())
	}
	if *exact {
		opts = append(opts, xic.WithoutFastTableau())
	}
	ctx, cancel := checkContext(*timeout)
	defer cancel()
	for i, spec := range specs {
		spec = spec.WithSolveOptions(opts...)
		res, err := spec.Consistent(ctx)
		if err != nil {
			if multi {
				return false, fmt.Errorf("%s: %w", consPaths[i], err)
			}
			return false, err
		}
		prefix := ""
		if multi {
			prefix = consPaths[i] + ": "
		}
		if !res.Consistent {
			fmt.Printf("%sINCONSISTENT (%s): no document conforms to the DTD and satisfies all %d constraints\n",
				prefix, res.Class, len(spec.Constraints()))
			negative = true
			continue
		}
		fmt.Printf("%sCONSISTENT (%s)\n", prefix, res.Class)
		if *witnessPath != "" && res.Witness != nil {
			if err := os.WriteFile(*witnessPath, []byte(xic.SerializeDocument(res.Witness)), 0o644); err != nil {
				return false, err
			}
			fmt.Printf("witness written to %s\n", *witnessPath)
		}
	}
	return negative, nil
}

func runImply(args []string) (negative bool, err error) {
	fs := flag.NewFlagSet("imply", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "DTD file")
	var consPaths fileList
	fs.Var(&consPaths, "constraints", "constraint file (Σ; repeat to test the query under several sets on one compiled schema)")
	query := fs.String("query", "", "constraint φ to test, in constraint syntax")
	cePath := fs.String("counterexample", "", "write a counterexample document here when not implied (single set only)")
	solverPar := fs.Int("solver-par", 0, "branch-and-bound worker goroutines (0 = serial)")
	exact := fs.Bool("exact", false, "force the exact big.Rat simplex kernel (skip the int64 fast tableau)")
	timeout := fs.Duration("timeout", 0, "abort the coNP search after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	multi := len(consPaths) > 1
	if multi && *cePath != "" {
		return false, fmt.Errorf("-counterexample requires a single -constraints file")
	}
	_, specs, err := loadSchemaSpecs(*dtdPath, consPaths)
	if err != nil {
		return false, err
	}
	if *query == "" {
		return false, fmt.Errorf("missing -query")
	}
	phi, err := constraint.ParseOne(*query)
	if err != nil {
		return false, err
	}
	ctx, cancel := checkContext(*timeout)
	defer cancel()
	for i, spec := range specs {
		var imp *xic.Implication
		if *solverPar != 0 || *exact {
			var opts []xic.SolveOption
			opts = append(opts, xic.WithSolverParallelism(*solverPar))
			if *exact {
				opts = append(opts, xic.WithoutFastTableau())
			}
			imp, err = spec.ImpliesOpts(ctx, phi, opts...)
		} else {
			imp, err = spec.Implies(ctx, phi)
		}
		if err != nil {
			if multi {
				return false, fmt.Errorf("%s: %w", consPaths[i], err)
			}
			return false, err
		}
		prefix := ""
		if multi {
			prefix = consPaths[i] + ": "
		}
		if imp.Implied {
			fmt.Printf("%sIMPLIED: every conforming document satisfying Σ satisfies %s\n", prefix, phi)
			continue
		}
		negative = true
		fmt.Printf("%sNOT IMPLIED: %s can fail while Σ holds\n", prefix, phi)
		if *cePath != "" && imp.Counterexample != nil {
			if err := os.WriteFile(*cePath, []byte(xic.SerializeDocument(imp.Counterexample)), 0o644); err != nil {
				return false, err
			}
			fmt.Printf("counterexample written to %s\n", *cePath)
		}
	}
	return negative, nil
}

func runValidate(args []string) (negative bool, err error) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "DTD file")
	consPath := fs.String("constraints", "", "constraint file (optional)")
	docPath := fs.String("doc", "", "XML document file")
	stream := fs.Bool("stream", false, "validate in a single streaming pass; memory is bounded by the constraint indexes, not the document size")
	timeout := fs.Duration("timeout", 0, "abort validation (either mode) after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	spec, err := loadSpec(*dtdPath, *consPath)
	if err != nil {
		return false, err
	}
	if *docPath == "" {
		return false, fmt.Errorf("missing -doc")
	}
	f, err := os.Open(*docPath)
	if err != nil {
		return false, err
	}
	defer f.Close()
	ctx, cancel := checkContext(*timeout)
	defer cancel()
	if *stream {
		rep, err := spec.ValidateStream(ctx, f)
		if err != nil {
			return false, err
		}
		if !rep.OK() {
			fmt.Printf("INVALID: %d violation(s) in %d elements\n", len(rep.Violations), rep.Elements)
			for _, v := range rep.Violations {
				fmt.Printf("  %s\n", v)
			}
			if rep.Truncated {
				fmt.Println("  (further violations suppressed)")
			}
			return true, nil
		}
		fmt.Printf("VALID: %d elements conform to the DTD and satisfy all constraints\n", rep.Elements)
		return false, nil
	}
	doc, err := xic.ParseDocument(f)
	if err != nil {
		return false, err
	}
	if err := spec.Validate(ctx, doc); err != nil {
		if errors.Is(err, xic.ErrCanceled) {
			return false, err
		}
		fmt.Printf("INVALID: %v\n", err)
		return true, nil
	}
	fmt.Println("VALID: document conforms to the DTD and satisfies all constraints")
	return false, nil
}

func runSimplify(args []string) error {
	fs := flag.NewFlagSet("simplify", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "DTD file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadDTD(*dtdPath)
	if err != nil {
		return err
	}
	simp := dtd.Simplify(d)
	fmt.Print(simp.DTD.String())
	return nil
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "DTD file")
	consPath := fs.String("constraints", "", "constraint file (optional)")
	bigM := fs.Bool("bigm", false, "print the big-M LIP matrix of Theorem 4.1 instead of the system")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadDTD(*dtdPath)
	if err != nil {
		return err
	}
	set, err := loadConstraints(*consPath, false)
	if err != nil {
		return err
	}
	enc, err := cardinality.EncodeDTD(dtd.Simplify(d))
	if err != nil {
		return err
	}
	if _, err := enc.AddFull(set); err != nil {
		return err
	}
	if !*bigM {
		fmt.Print(enc.Sys.String())
		return nil
	}
	m := enc.Sys.BigM()
	fmt.Printf("# %d rows, %d variables, A·x ≥ b with x ≥ 0\n", m.Rows(), m.Cols())
	for r := range m.A {
		for c := range m.A[r] {
			if m.A[r][c].Sign() != 0 {
				fmt.Printf("%s·%s ", m.A[r][c], m.Names[c])
			}
		}
		fmt.Printf(">= %s\n", m.B[r])
	}
	return nil
}

func runClass(args []string) error {
	fs := flag.NewFlagSet("class", flag.ExitOnError)
	consPath := fs.String("constraints", "", "constraint file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := loadConstraints(*consPath, true)
	if err != nil {
		return err
	}
	fmt.Println(xic.ClassOf(set))
	if err := xic.CheckPrimaryKeys(set); err == nil {
		fmt.Println("primary-key restricted: yes")
	} else {
		fmt.Printf("primary-key restricted: no (%v)\n", err)
	}
	return nil
}
