package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"xic"
	"xic/internal/constraint"
	"xic/internal/registry"
)

// config tunes one server instance.
type config struct {
	// MaxSpecs bounds the spec registry (< 1 = registry.DefaultMaxSpecs).
	MaxSpecs int
	// DefaultTimeout bounds every request's work when the request itself
	// asks for nothing tighter; 0 means no server-imposed bound.
	DefaultTimeout time.Duration
	// MaxBody bounds the JSON bodies of the compile and decision endpoints
	// (0 = DefaultMaxBody). Oversized bodies get 413.
	MaxBody int64
	// MaxDoc bounds the XML body of the validate endpoint; 0 means
	// unlimited, because streaming validation is built for documents far
	// larger than memory.
	MaxDoc int64
	// MaxSessions bounds the live document sessions
	// (< 1 = registry.DefaultMaxSessions).
	MaxSessions int
	// SessionTTL is the idle lifetime of a document session
	// (<= 0 = registry.DefaultSessionTTL).
	SessionTTL time.Duration
}

// DefaultMaxBody is the JSON body bound when the flag is unset: real DTDs
// and constraint sets are kilobytes, so 4 MiB is generous while still
// refusing a mistakenly-posted document dump.
const DefaultMaxBody = 4 << 20

// server is the xicd HTTP engine: a spec registry plus handlers. All state
// is concurrency-safe; one server serves any number of connections.
type server struct {
	reg      *registry.Registry
	sessions *registry.SessionStore
	cfg      config

	vars     *expvar.Map
	inflight *expvar.Int
	requests *expvar.Map // per-endpoint request counts
	statuses *expvar.Map // per-status response counts
	elements *expvar.Int // total elements seen by streaming validation
}

func newServer(cfg config) *server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	s := &server{
		reg:      registry.New(cfg.MaxSpecs),
		sessions: registry.NewSessionStore(cfg.MaxSessions, cfg.SessionTTL),
		cfg:      cfg,
		vars:     new(expvar.Map).Init(),
		inflight: new(expvar.Int),
		requests: new(expvar.Map).Init(),
		statuses: new(expvar.Map).Init(),
		elements: new(expvar.Int),
	}
	s.vars.Set("requests_inflight", s.inflight)
	s.vars.Set("requests_total", s.requests)
	s.vars.Set("responses_by_status", s.statuses)
	s.vars.Set("validate_elements_total", s.elements)
	// The two-level cache, one counter block per tier: the schema tier
	// amortises the heavy per-DTD compilation, the spec tier the cheap
	// per-constraint-set bind. A spec miss whose schema tier hits is the
	// serving sweet spot — bind-only work.
	s.vars.Set("cache", expvar.Func(func() any {
		st := s.reg.Stats()
		tier := func(t registry.TierStats) map[string]any {
			return map[string]any{
				"size":          t.Size,
				"hits":          t.Hits,
				"misses":        t.Misses,
				"evictions":     t.Evictions,
				"errors":        t.Errors,
				"work_ms_total": float64(t.Time.Microseconds()) / 1000,
			}
		}
		return map[string]any{
			"tiers": map[string]any{
				"schemas": tier(st.Schemas),
				"specs":   tier(st.SpecTier),
			},
			// Legacy roll-up, kept (types included) for dashboards
			// predating the two tiers.
			"specs":            st.Specs,
			"hits":             st.Hits,
			"misses":           st.Misses,
			"evictions":        st.Evictions,
			"compile_errors":   st.CompileErrors,
			"compile_ms_total": float64(st.CompileTime.Microseconds()) / 1000,
		}
	}))
	// Every cached spec with its two-part fingerprint, most recently used
	// first: the schema_id half is the handle for bind-by-fingerprint
	// compiles (POST /v1/specs with "dtd_id").
	s.vars.Set("specs", expvar.Func(func() any {
		entries := s.reg.Entries()
		out := make([]map[string]any, 0, len(entries))
		for _, e := range entries {
			out = append(out, map[string]any{
				"id":        e.ID,
				"schema_id": e.SchemaID,
				"class":     e.Spec.Class().String(),
				"bind_ms":   float64(e.BindTime.Microseconds()) / 1000,
			})
		}
		return out
	}))
	// The schema-wide memoized implication caches, summed over the schema
	// tier: hits are implication queries answered without a coNP refutation.
	s.vars.Set("impl_cache", expvar.Func(func() any {
		var total xic.ImplCacheStats
		for _, se := range s.reg.SchemaEntries() {
			st := se.Schema.ImplCacheStats()
			total.Hits += st.Hits
			total.Misses += st.Misses
			total.Entries += st.Entries
		}
		return map[string]any{
			"hits":    total.Hits,
			"misses":  total.Misses,
			"entries": total.Entries,
		}
	}))
	// The solver hit/shrink counters, summed over every cached Spec: how
	// many ILP-oracle calls presolve answered outright, how many the
	// no-branching fast path answered, how much the systems shrank before
	// any simplex pivot ran, and how the pivots split between the int64
	// fast tableau and the exact big.Rat kernel. Evicted Specs take their
	// counts with them, so these are counters over the live cache, not
	// process history. The nested "options" map states the SolveOptions
	// the server applies when a request carries no overrides
	// (solver_parallelism 0 = serial search per check).
	s.vars.Set("solve", expvar.Func(func() any {
		var total xic.SolveStats
		for _, e := range s.reg.Entries() {
			st := e.Spec.SolveStats()
			total.Solves += st.Solves
			total.PresolveDecided += st.PresolveDecided
			total.FastPath += st.FastPath
			total.Nodes += st.Nodes
			total.Pivots += st.Pivots
			total.FastPivots += st.FastPivots
			total.ExactFallbacks += st.ExactFallbacks
			total.Steals += st.Steals
			total.Cuts += st.Cuts
			total.PresolveRows += st.PresolveRows
			total.PresolveRowsOut += st.PresolveRowsOut
			total.VarsFixed += st.VarsFixed
			total.ImplicationsResolved += st.ImplicationsResolved
		}
		return map[string]any{
			"solves":                total.Solves,
			"presolve_decided":      total.PresolveDecided,
			"fastpath":              total.FastPath,
			"nodes":                 total.Nodes,
			"pivots":                total.Pivots,
			"fast_pivots":           total.FastPivots,
			"exact_fallbacks":       total.ExactFallbacks,
			"steals":                total.Steals,
			"cuts":                  total.Cuts,
			"presolve_rows_in":      total.PresolveRows,
			"presolve_rows_out":     total.PresolveRowsOut,
			"vars_fixed":            total.VarsFixed,
			"implications_resolved": total.ImplicationsResolved,
			"options": map[string]any{
				"max_nodes":          xic.DefaultMaxNodes,
				"solver_parallelism": 0,
				"presolve":           true,
				"fast_tableau":       true,
				"skip_witness":       false,
			},
		}
	}))
	// Live document sessions: retained trees with O(edit) revalidation.
	// Size tracks memory pressure (each session holds a parsed document);
	// the eviction counters say whether clients lose sessions to the LRU
	// bound (raise -max-sessions) or to idling out (raise -session-ttl).
	s.vars.Set("sessions", expvar.Func(func() any {
		st := s.sessions.SessionStatsSnapshot()
		return map[string]any{
			"size":          st.Size,
			"opens":         st.Opens,
			"hits":          st.Hits,
			"misses":        st.Misses,
			"evictions_lru": st.EvictionsLRU,
			"evictions_ttl": st.EvictionsTTL,
			"closes":        st.Closes,
		}
	}))
	return s
}

// close releases the server's background resources — today, the session
// store's TTL sweeper.
func (s *server) close() {
	s.sessions.Close()
}

// handler routes the API. Method+pattern routing means a wrong method gets
// 405 from the mux itself.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schemas", s.count("compile_schema", s.handleCompileSchema))
	mux.HandleFunc("GET /v1/schemas/{id}", s.count("schema_meta", s.handleSchemaMeta))
	mux.HandleFunc("POST /v1/specs", s.count("compile", s.handleCompile))
	mux.HandleFunc("GET /v1/specs/{id}", s.count("spec_meta", s.handleSpecMeta))
	mux.HandleFunc("POST /v1/specs/{id}/consistent", s.count("consistent", s.withSpec(s.handleConsistent)))
	mux.HandleFunc("POST /v1/specs/{id}/implies", s.count("implies", s.withSpec(s.handleImplies)))
	mux.HandleFunc("POST /v1/specs/{id}/diagnose", s.count("diagnose", s.withSpec(s.handleDiagnose)))
	mux.HandleFunc("POST /v1/specs/{id}/validate", s.count("validate", s.withSpec(s.handleValidate)))
	mux.HandleFunc("POST /v1/specs/{id}/sessions", s.count("session_open", s.withSpec(s.handleOpenSession)))
	mux.HandleFunc("GET /v1/sessions/{sid}", s.count("session_meta", s.withSession(s.handleSessionMeta)))
	mux.HandleFunc("GET /v1/sessions/{sid}/document", s.count("session_document", s.withSession(s.handleSessionDocument)))
	mux.HandleFunc("POST /v1/sessions/{sid}/edits", s.count("session_edits", s.withSession(s.handleEdits)))
	mux.HandleFunc("DELETE /v1/sessions/{sid}", s.count("session_close", s.handleCloseSession))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"specs":%d}`+"\n", s.reg.Len())
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, s.vars.String())
	})
	return mux
}

// count wraps a handler with the request/inflight counters.
func (s *server) count(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(name, 1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		h(w, r)
	}
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Status  int    `json:"status"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Parse errors carry their position.
	Input  string `json:"input,omitempty"`
	Line   int    `json:"line,omitempty"`
	Offset int    `json:"offset,omitempty"`
	// Spec errors carry their stage.
	Stage string `json:"stage,omitempty"`
}

// errBodyFor classifies err into the wire envelope via the public taxonomy.
func errBodyFor(err error) errorBody {
	b := errorBody{Status: xic.HTTPStatus(err), Message: err.Error(), Kind: "internal"}
	var pe *xic.ParseError
	var se *xic.SpecError
	switch {
	case errors.Is(err, xic.ErrCanceled):
		b.Kind = "canceled"
	case errors.Is(err, xic.ErrUndecidable):
		b.Kind = "undecidable"
	case errors.Is(err, xic.ErrNothingToDiagnose):
		b.Kind = "consistent"
	case errors.As(err, &pe):
		b.Kind = "parse"
		b.Input, b.Line, b.Offset = pe.Input, pe.Line, pe.Offset
	case errors.As(err, &se):
		b.Kind = "spec"
		b.Stage = se.Stage
	}
	return b
}

func (s *server) writeError(w http.ResponseWriter, err error) {
	s.writeErrorBody(w, errBodyFor(err))
}

// writeStatusError reports a request-level failure (bad JSON, unknown id,
// oversized body) that the xic taxonomy does not cover.
func (s *server) writeStatusError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	s.writeErrorBody(w, errorBody{Status: status, Kind: kind, Message: fmt.Sprintf(format, args...)})
}

func (s *server) writeErrorBody(w http.ResponseWriter, b errorBody) {
	s.statuses.Add(strconv.Itoa(b.Status), 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(b.Status)
	json.NewEncoder(w).Encode(map[string]errorBody{"error": b}) //nolint:errcheck // response write failure has no recovery
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.statuses.Add(strconv.Itoa(status), 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response write failure has no recovery
}

// requestContext applies the effective deadline: the tighter of the server
// default and the client's ?timeout= (or JSON "timeout") value. The base is
// r.Context(), so a client hanging up mid-solve cancels the ILP search.
func (s *server) requestContext(r *http.Request, bodyTimeout string) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	for _, raw := range []string{r.URL.Query().Get("timeout"), bodyTimeout} {
		if raw == "" {
			continue
		}
		td, err := time.ParseDuration(raw)
		if err != nil || td <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: want a positive Go duration like 500ms", raw)
		}
		if d == 0 || td < d {
			d = td
		}
	}
	if d == 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// decodeJSON reads a size-bounded JSON body into v. An empty body leaves v
// untouched, so endpoints with all-optional parameters accept bare POSTs.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) (ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeStatusError(w, http.StatusRequestEntityTooLarge, "request",
				"request body exceeds %d bytes", mbe.Limit)
		} else {
			s.writeStatusError(w, http.StatusBadRequest, "request", "reading body: %v", err)
		}
		return false
	}
	if len(data) == 0 {
		return true
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "bad JSON body: %v", err)
		return false
	}
	return true
}

// ---- POST /v1/schemas --------------------------------------------------

// compileSchemaRequest registers the heavy, constraint-free half of a
// specification: the DTD alone.
type compileSchemaRequest struct {
	DTD string `json:"dtd"`
}

type compileSchemaResponse struct {
	ID            string  `json:"id"`
	Cached        bool    `json:"cached"`
	DTDConsistent bool    `json:"dtd_consistent"`
	CompileMs     float64 `json:"compile_ms,omitempty"`
}

// handleCompileSchema compiles (or recalls) a Schema so that later
// compiles can bind constraint sets against it by fingerprint, skipping
// DTD compilation entirely — the batch implies/consistent serving shape
// for one stable schema.
func (s *server) handleCompileSchema(w http.ResponseWriter, r *http.Request) {
	var req compileSchemaRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.DTD == "" {
		s.writeStatusError(w, http.StatusBadRequest, "request", `missing "dtd" field`)
		return
	}
	entry, cached, err := s.reg.CompileSchema(req.DTD)
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusCreated
	resp := compileSchemaResponse{
		ID:            entry.ID,
		Cached:        cached,
		DTDConsistent: entry.Schema.ConsistentDTD(),
	}
	if cached {
		status = http.StatusOK
	} else {
		resp.CompileMs = float64(entry.CompileTime.Microseconds()) / 1000
	}
	s.writeJSON(w, status, resp)
}

// ---- GET /v1/schemas/{id} ----------------------------------------------

func (s *server) handleSchemaMeta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	schema, ok := s.reg.GetSchema(id)
	if !ok {
		s.writeStatusError(w, http.StatusNotFound, "request",
			"no schema %q: compile it via POST /v1/schemas (the registry is bounded, so old entries may have been evicted)", id)
		return
	}
	st := schema.ImplCacheStats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"id":             id,
		"root":           schema.DTD().Root,
		"types":          len(schema.DTD().Types()),
		"dtd_consistent": schema.ConsistentDTD(),
		"impl_cache": map[string]any{
			"hits":    st.Hits,
			"misses":  st.Misses,
			"entries": st.Entries,
		},
	})
}

// ---- POST /v1/specs ----------------------------------------------------

// compileRequest carries either the DTD source or — the bind-by-fingerprint
// form — the id of an already-registered schema, plus the constraint set to
// bind.
type compileRequest struct {
	DTD         string `json:"dtd,omitempty"`
	DTDID       string `json:"dtd_id,omitempty"`
	Constraints string `json:"constraints"`
}

type compileResponse struct {
	ID          string  `json:"id"`
	SchemaID    string  `json:"schema_id"`
	Cached      bool    `json:"cached"`
	Class       string  `json:"class"`
	Constraints int     `json:"constraints"`
	CompileMs   float64 `json:"compile_ms,omitempty"`
	BindMs      float64 `json:"bind_ms,omitempty"`
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	var entry *registry.Entry
	var cached bool
	var err error
	switch {
	case req.DTD != "" && req.DTDID != "":
		s.writeStatusError(w, http.StatusBadRequest, "request", `"dtd" and "dtd_id" are mutually exclusive`)
		return
	case req.DTD != "":
		entry, cached, err = s.reg.Compile(req.DTD, req.Constraints)
	case req.DTDID != "":
		entry, cached, err = s.reg.BindByID(req.DTDID, req.Constraints)
		if errors.Is(err, registry.ErrUnknownSchema) {
			s.writeStatusError(w, http.StatusNotFound, "request",
				"no schema %q: compile it via POST /v1/schemas, or resubmit the DTD source", req.DTDID)
			return
		}
	default:
		s.writeStatusError(w, http.StatusBadRequest, "request", `missing "dtd" (or "dtd_id") field`)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusCreated
	resp := compileResponse{
		ID:          entry.ID,
		SchemaID:    entry.SchemaID,
		Cached:      cached,
		Class:       entry.Spec.Class().String(),
		Constraints: len(entry.Spec.Constraints()),
	}
	if cached {
		// This request compiled nothing; reporting the original compile's
		// duration here would double-count it in client latency metrics.
		status = http.StatusOK
	} else {
		// CompileMs is the schema compilation this miss had to run (zero on
		// a schema-tier hit: the whole point of binding by fingerprint);
		// BindMs is this entry's own Schema.Bind cost.
		resp.CompileMs = float64(entry.CompileTime.Microseconds()) / 1000
		resp.BindMs = float64(entry.BindTime.Microseconds()) / 1000
	}
	s.writeJSON(w, status, resp)
}

// withSpec resolves the {id} path value against the registry.
func (s *server) withSpec(h func(http.ResponseWriter, *http.Request, *xic.Spec)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spec, ok := s.reg.Get(id)
		if !ok {
			s.writeStatusError(w, http.StatusNotFound, "request",
				"no spec %q: compile it via POST /v1/specs (the registry is bounded, so old entries may have been evicted)", id)
			return
		}
		h(w, r, spec)
	}
}

// ---- GET /v1/specs/{id} ------------------------------------------------

func (s *server) handleSpecMeta(w http.ResponseWriter, r *http.Request) {
	s.withSpec(func(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
		set := spec.Constraints()
		strs := make([]string, len(set))
		for i, c := range set {
			strs[i] = c.String()
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"id":             r.PathValue("id"),
			"class":          spec.Class().String(),
			"constraints":    strs,
			"dtd_consistent": spec.ConsistentDTD(),
		})
	})(w, r)
}

// ---- POST /v1/specs/{id}/consistent ------------------------------------

// consistentRequest tunes one consistency question. With "sets", the
// request is a batch: element i of the response answers Σ ∪ sets[i], all
// sharing the compiled encoding over Spec.ConsistentAll's worker pool.
type consistentRequest struct {
	Extra       []string   `json:"extra,omitempty"`
	Sets        [][]string `json:"sets,omitempty"`
	SkipWitness bool       `json:"skip_witness,omitempty"`
	// SolverParallelism bounds the branch-and-bound workers (and, for
	// "sets" batches, the batch pool) for this request. Absent or 0 keeps
	// the server default; values outside [0, maxSolverParallelism] are a
	// 400.
	SolverParallelism *int `json:"solver_parallelism,omitempty"`
	// FastTableau toggles the int64 fast simplex kernel; absent means on.
	// false forces every LP onto the exact big.Rat kernel.
	FastTableau *bool  `json:"fast_tableau,omitempty"`
	Timeout     string `json:"timeout,omitempty"`
}

// maxSolverParallelism caps per-request solver parallelism: a shared
// daemon must not let one request fan a single NP search out over an
// unbounded goroutine count.
const maxSolverParallelism = 64

// requestSolveOptions translates the wire-level solver knobs into
// SolveOption tweaks, rejecting out-of-range values.
func requestSolveOptions(par *int, fast *bool) ([]xic.SolveOption, error) {
	var opts []xic.SolveOption
	if par != nil {
		if *par < 0 || *par > maxSolverParallelism {
			return nil, fmt.Errorf("solver_parallelism %d out of range [0, %d]", *par, maxSolverParallelism)
		}
		opts = append(opts, xic.WithSolverParallelism(*par))
	}
	if fast != nil && !*fast {
		opts = append(opts, xic.WithoutFastTableau())
	}
	return opts, nil
}

type consistentResult struct {
	Consistent bool       `json:"consistent"`
	Class      string     `json:"class,omitempty"`
	Witness    string     `json:"witness,omitempty"`
	Error      *errorBody `json:"error,omitempty"`
}

func (s *server) handleConsistent(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
	var req consistentRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel, err := s.requestContext(r, req.Timeout)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	defer cancel()
	opts, err := requestSolveOptions(req.SolverParallelism, req.FastTableau)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	if req.SkipWitness {
		opts = append(opts, xic.WithSkipWitness())
	}
	if len(opts) > 0 {
		spec = spec.WithSolveOptions(opts...)
	}

	if req.Sets != nil && req.Extra != nil {
		// "extra" looks composable with "sets" but the batch answers
		// Σ ∪ sets[i] only; refuse rather than silently answer the wrong
		// question. Put shared extensions into every set instead.
		s.writeStatusError(w, http.StatusBadRequest, "request",
			`"extra" and "sets" are mutually exclusive; fold shared constraints into each set`)
		return
	}
	if req.Sets != nil {
		sets := make([][]xic.Constraint, len(req.Sets))
		for i, strs := range req.Sets {
			set, err := parseConstraintList(strs)
			if err != nil {
				s.writeStatusError(w, http.StatusBadRequest, "request", "sets[%d]: %v", i, err)
				return
			}
			sets[i] = set
		}
		batch := spec.ConsistentAll(ctx, sets)
		results := make([]consistentResult, len(batch))
		for i, b := range batch {
			results[i] = toConsistentResult(b.Result, b.Err)
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"results": results})
		return
	}

	extra, err := parseConstraintList(req.Extra)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "extra: %v", err)
		return
	}
	res, err := spec.ConsistentWith(ctx, extra...)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toConsistentResult(res, nil))
}

func toConsistentResult(res *xic.Result, err error) consistentResult {
	if err != nil {
		b := errBodyFor(err)
		return consistentResult{Error: &b}
	}
	out := consistentResult{Consistent: res.Consistent, Class: res.Class.String()}
	if res.Witness != nil {
		out.Witness = xic.SerializeDocument(res.Witness)
	}
	return out
}

// parseConstraintList parses individual constraint strings.
func parseConstraintList(strs []string) ([]xic.Constraint, error) {
	out := make([]xic.Constraint, len(strs))
	for i, str := range strs {
		c, err := constraint.ParseOne(str)
		if err != nil {
			return nil, fmt.Errorf("constraint %q: %w", str, err)
		}
		out[i] = c
	}
	return out, nil
}

// ---- POST /v1/specs/{id}/implies ---------------------------------------

// impliesRequest asks whether the compiled Σ implies the query constraint;
// "queries" makes it a batch over Spec.ImpliesAll.
type impliesRequest struct {
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	// SolverParallelism and FastTableau tune the solver for this request,
	// with the same bounds and semantics as on /consistent.
	SolverParallelism *int   `json:"solver_parallelism,omitempty"`
	FastTableau       *bool  `json:"fast_tableau,omitempty"`
	Timeout           string `json:"timeout,omitempty"`
}

type impliesResult struct {
	Implied        bool       `json:"implied"`
	Counterexample string     `json:"counterexample,omitempty"`
	Error          *errorBody `json:"error,omitempty"`
}

func (s *server) handleImplies(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
	var req impliesRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel, err := s.requestContext(r, req.Timeout)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	defer cancel()
	opts, err := requestSolveOptions(req.SolverParallelism, req.FastTableau)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	if len(opts) > 0 {
		spec = spec.WithSolveOptions(opts...)
	}

	if req.Queries != nil {
		phis, err := parseConstraintList(req.Queries)
		if err != nil {
			s.writeStatusError(w, http.StatusBadRequest, "request", "queries: %v", err)
			return
		}
		batch := spec.ImpliesAll(ctx, phis)
		results := make([]impliesResult, len(batch))
		for i, b := range batch {
			results[i] = toImpliesResult(b.Implication, b.Err)
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"results": results})
		return
	}

	if req.Query == "" {
		s.writeStatusError(w, http.StatusBadRequest, "request", `missing "query" (or "queries") field`)
		return
	}
	phi, err := constraint.ParseOne(req.Query)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "query: %v", err)
		return
	}
	imp, err := spec.Implies(ctx, phi)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toImpliesResult(imp, nil))
}

func toImpliesResult(imp *xic.Implication, err error) impliesResult {
	if err != nil {
		b := errBodyFor(err)
		return impliesResult{Error: &b}
	}
	out := impliesResult{Implied: imp.Implied}
	if imp.Counterexample != nil {
		out.Counterexample = xic.SerializeDocument(imp.Counterexample)
	}
	return out
}

// ---- POST /v1/specs/{id}/diagnose --------------------------------------

type diagnoseRequest struct {
	Timeout string `json:"timeout,omitempty"`
}

func (s *server) handleDiagnose(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
	var req diagnoseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel, err := s.requestContext(r, req.Timeout)
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	defer cancel()
	diag, err := spec.Diagnose(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	core := make([]string, len(diag.Core))
	for i, c := range diag.Core {
		core[i] = c.String()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"dtd_empty": diag.DTDEmpty,
		"core":      core,
	})
}

// ---- POST /v1/specs/{id}/validate --------------------------------------

type violationJSON struct {
	Path       string `json:"path"`
	Line       int    `json:"line,omitempty"`
	Offset     int64  `json:"offset,omitempty"`
	Constraint string `json:"constraint,omitempty"`
	Msg        string `json:"msg"`
}

type validateResponse struct {
	OK         bool            `json:"ok"`
	Elements   int             `json:"elements"`
	Truncated  bool            `json:"truncated,omitempty"`
	Violations []violationJSON `json:"violations,omitempty"`
}

// handleValidate streams the request body — the XML document itself —
// straight into Spec.ValidateStream, so a multi-gigabyte document is
// validated in bounded memory without ever being buffered server-side.
func (s *server) handleValidate(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
	ctx, cancel, err := s.requestContext(r, "")
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	defer cancel()
	body := r.Body
	if s.cfg.MaxDoc > 0 {
		body = http.MaxBytesReader(w, body, s.cfg.MaxDoc)
	}
	rep, err := spec.ValidateStream(ctx, body) //xic:ignore httpguard MaxDoc=0 opts out of the body cap by operator choice; the stream validator holds bounded memory regardless of document size
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeStatusError(w, http.StatusRequestEntityTooLarge, "request",
				"document exceeds %d bytes", mbe.Limit)
			return
		}
		s.writeError(w, err)
		return
	}
	s.elements.Add(int64(rep.Elements))
	resp := validateResponse{OK: rep.OK(), Elements: rep.Elements, Truncated: rep.Truncated}
	for _, v := range rep.Violations {
		vj := violationJSON{Path: v.Path, Line: v.Line, Offset: v.Offset, Msg: v.Msg}
		if v.Constraint != nil {
			vj.Constraint = v.Constraint.String()
		}
		resp.Violations = append(resp.Violations, vj)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
