// Command xicd serves the compiled xic engine over HTTP as a long-lived
// process: specifications are compiled once into a bounded LRU registry
// keyed by content hash, and every later request against the same spec
// skips the per-DTD work entirely (the paper's fixed-DTD amortisation,
// Corollaries 4.11 and 5.5, as a service).
//
// Endpoints (all request/response bodies JSON unless noted):
//
//	POST /v1/specs                     {"dtd": …, "constraints": …} → {"id", "cached", "class", …}
//	GET  /v1/specs/{id}                compiled-spec metadata
//	POST /v1/specs/{id}/consistent     optional {"extra": […], "sets": [[…]…], "skip_witness", "timeout"}
//	POST /v1/specs/{id}/implies        {"query": …} or {"queries": […]}
//	POST /v1/specs/{id}/diagnose       minimal inconsistent core
//	POST /v1/specs/{id}/validate       body is the XML document, streamed in bounded memory
//	POST /v1/specs/{id}/sessions       body is the XML document; opens a retained session → {"session_id", …}
//	GET  /v1/sessions/{sid}            session metadata (element count; the document is always valid)
//	GET  /v1/sessions/{sid}/document   the session's current document, as XML
//	POST /v1/sessions/{sid}/edits      {"ops": […]} applied transactionally with O(edit) re-checking
//	DELETE /v1/sessions/{sid}          close a session
//	GET  /healthz                      liveness
//	GET  /debug/vars                   expvar counters: cache hits/misses, compile latency, in-flight
//
// Every endpoint accepts ?timeout=DURATION (and the JSON endpoints a
// "timeout" field); the tighter of that and -timeout bounds the request,
// cancelling even a mid-flight NP solve. Decision errors map onto statuses
// via xic.HTTPStatus: 400 syntax, 422 invalid-or-undecidable spec,
// 409 nothing to diagnose, 504 deadline, 500 internal.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8343", "listen address")
	maxSpecs := flag.Int("max-specs", 0, "bound on cached compiled specs (0 = default)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline; requests may tighten but not exceed it (0 = none)")
	maxBody := flag.Int64("max-body", DefaultMaxBody, "byte bound on JSON request bodies")
	maxDoc := flag.Int64("max-doc", 0, "byte bound on validate-endpoint documents (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 0, "bound on live document sessions (0 = default)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle lifetime of a document session (0 = default)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	s := newServer(config{
		MaxSpecs:       *maxSpecs,
		DefaultTimeout: *timeout,
		MaxBody:        *maxBody,
		MaxDoc:         *maxDoc,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	})
	defer s.close()
	expvar.Publish("xicd", s.vars)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("xicd: listening on %s (max specs %d, request timeout %v)", *addr, *maxSpecs, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("xicd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("xicd: shutting down, draining for up to %v", *shutdownGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("xicd: shutdown: %v", err)
	}
	st := s.reg.Stats()
	log.Printf("xicd: done; served %d specs (%d hits, %d misses, %d evictions)",
		st.Specs, st.Hits, st.Misses, st.Evictions)
}
