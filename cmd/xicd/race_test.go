//go:build race

package main

// raceEnabled reports whether the race detector instruments this binary;
// timing-sensitive assertions skip under it.
const raceEnabled = true
