package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// benchSources builds a specification whose per-DTD compile work dominates
// a single cached check: n element types, each with a key, so the set is
// keys-only (linear consistency) while Compile pays DTD simplification,
// the encoding template and n content-model automata.
func benchSources(n int) (dtdSrc, xicSrc string) {
	var dtd, cons strings.Builder
	dtd.WriteString("<!ELEMENT root (")
	for i := 0; i < n; i++ {
		if i > 0 {
			dtd.WriteString(", ")
		}
		fmt.Fprintf(&dtd, "t%d*", i)
	}
	dtd.WriteString(")>\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&dtd, "<!ELEMENT t%d (#PCDATA)>\n<!ATTLIST t%d k CDATA #REQUIRED>\n", i, i)
		fmt.Fprintf(&cons, "t%d.k -> t%d\n", i, i)
	}
	return dtd.String(), cons.String()
}

const benchSpecTypes = 200

// postOK sends one request through the router and fails the benchmark on a
// non-2xx answer.
func postOK(tb testing.TB, h http.Handler, path, body string) {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK && w.Code != http.StatusCreated {
		tb.Fatalf("%s: status %d: %s", path, w.Code, w.Body)
	}
}

// BenchmarkServerConsistent is the ServerBench of the registry design: the
// cached case answers a consistency request against an already-compiled
// spec (the steady state of a long-lived daemon), the cold case pays
// compile + check per request (the old one-shot CLI model). The gap is the
// amortised per-DTD work.
func BenchmarkServerConsistent(b *testing.B) {
	dtdSrc, xicSrc := benchSources(benchSpecTypes)
	compileBody, _ := json.Marshal(compileRequest{DTD: dtdSrc, Constraints: xicSrc})
	checkBody := `{"skip_witness": true}`

	b.Run("cached", func(b *testing.B) {
		s := newServer(config{})
		defer s.close()
		h := s.handler()
		id := xicFingerprintViaCompile(b, h, string(compileBody))
		path := "/v1/specs/" + id + "/consistent"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postOK(b, h, path, checkBody)
		}
	})

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := newServer(config{})
			h := s.handler()
			id := xicFingerprintViaCompile(b, h, string(compileBody))
			postOK(b, h, "/v1/specs/"+id+"/consistent", checkBody)
			s.close()
		}
	})
}

// BenchmarkServerValidateStream measures steady-state streaming validation
// throughput against one cached spec.
func BenchmarkServerValidateStream(b *testing.B) {
	dtdSrc, xicSrc := benchSources(32)
	compileBody, _ := json.Marshal(compileRequest{DTD: dtdSrc, Constraints: xicSrc})
	s := newServer(config{})
	defer s.close()
	h := s.handler()
	id := xicFingerprintViaCompile(b, h, string(compileBody))

	var doc strings.Builder
	doc.WriteString("<root>")
	for i := 0; i < 32; i++ {
		for j := 0; j < 50; j++ {
			fmt.Fprintf(&doc, `<t%d k="v%d-%d">x</t%d>`, i, i, j, i)
		}
	}
	doc.WriteString("</root>")
	path := "/v1/specs/" + id + "/validate"
	b.SetBytes(int64(doc.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postOK(b, h, path, doc.String())
	}
}

func xicFingerprintViaCompile(tb testing.TB, h http.Handler, body string) string {
	req := httptest.NewRequest("POST", "/v1/specs", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusCreated && w.Code != http.StatusOK {
		tb.Fatalf("compile: status %d: %s", w.Code, w.Body)
	}
	var resp compileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		tb.Fatal(err)
	}
	return resp.ID
}

// TestCachedSpeedup is the acceptance check behind BenchmarkServerConsistent:
// a cached consistency request must be at least 10x faster than a cold
// compile + check of the same specification. Each side takes its best of
// several rounds, so a one-off scheduler stall or GC pause cannot fail the
// gate; the real gap is orders of magnitude. Race instrumentation distorts
// timings unpredictably, so the assertion is meaningless there.
func TestCachedSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is not meaningful under the race detector")
	}
	dtdSrc, xicSrc := benchSources(benchSpecTypes)
	compileBody, _ := json.Marshal(compileRequest{DTD: dtdSrc, Constraints: xicSrc})
	checkBody := `{"skip_witness": true}`

	const rounds = 5
	cold := make([]time.Duration, rounds)
	cached := make([]time.Duration, rounds)

	s := newServer(config{})
	defer s.close()
	h := s.handler()
	id := xicFingerprintViaCompile(t, h, string(compileBody))
	warmPath := "/v1/specs/" + id + "/consistent"
	postOK(t, h, warmPath, checkBody) // warm up code paths

	for i := 0; i < rounds; i++ {
		start := time.Now()
		postOK(t, h, warmPath, checkBody)
		cached[i] = time.Since(start)

		cs := newServer(config{})
		ch := cs.handler()
		start = time.Now()
		cid := xicFingerprintViaCompile(t, ch, string(compileBody))
		postOK(t, ch, "/v1/specs/"+cid+"/consistent", checkBody)
		cold[i] = time.Since(start)
		cs.close()
	}
	bestCold, bestCached := minDuration(cold), minDuration(cached)
	ratio := float64(bestCold) / float64(bestCached)
	t.Logf("cold compile+check %v, cached check %v, speedup %.1fx", bestCold, bestCached, ratio)
	if ratio < 10 {
		t.Errorf("cached requests only %.1fx faster than cold; the registry should amortise ≥10x", ratio)
	}
}

func minDuration(ds []time.Duration) time.Duration {
	min := ds[0]
	for _, d := range ds[1:] {
		if d < min {
			min = d
		}
	}
	return min
}
