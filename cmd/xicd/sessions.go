package main

import (
	"errors"
	"net/http"

	"xic"
	"xic/internal/registry"
)

// sessionHandle is what the store keeps per live session: the engine
// handle plus the spec id it was opened under, for metadata.
type sessionHandle struct {
	sess   *xic.Session
	specID string
}

// ---- POST /v1/specs/{id}/sessions ----------------------------------------

// openSessionResponse returns the handle for the edit endpoints.
type openSessionResponse struct {
	SessionID string `json:"session_id"`
	SpecID    string `json:"spec_id"`
	Elements  int    `json:"elements"`
	// Evicted lists sessions dropped to admit this one, so a client
	// juggling many documents learns immediately which handles died.
	Evicted []string `json:"evicted,omitempty"`
}

// handleOpenSession ingests the request body — the XML document itself —
// into a retained session under the spec. Invalid documents get 422 with
// the full violation report; a session only ever holds a valid document.
func (s *server) handleOpenSession(w http.ResponseWriter, r *http.Request, spec *xic.Spec) {
	ctx, cancel, err := s.requestContext(r, "")
	if err != nil {
		s.writeStatusError(w, http.StatusBadRequest, "request", "%v", err)
		return
	}
	defer cancel()
	body := r.Body
	if s.cfg.MaxDoc > 0 {
		body = http.MaxBytesReader(w, body, s.cfg.MaxDoc)
	}
	sess, err := spec.OpenSession(ctx, body) //xic:ignore httpguard MaxDoc=0 opts out of the body cap by operator choice, matching /validate
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeStatusError(w, http.StatusRequestEntityTooLarge, "request",
				"document exceeds %d bytes", mbe.Limit)
			return
		}
		var ide *xic.InvalidDocumentError
		if errors.As(err, &ide) {
			s.writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"ok":         false,
				"elements":   ide.Report.Elements,
				"violations": violationsJSON(ide.Report.Violations),
			})
			return
		}
		s.writeError(w, err)
		return
	}
	id := registry.NewSessionID()
	evicted := s.sessions.Put(id, &sessionHandle{sess: sess, specID: r.PathValue("id")})
	s.writeJSON(w, http.StatusCreated, openSessionResponse{
		SessionID: id,
		SpecID:    r.PathValue("id"),
		Elements:  sess.Elements(),
		Evicted:   evicted,
	})
}

// withSession resolves the {sid} path value against the session store.
func (s *server) withSession(h func(http.ResponseWriter, *http.Request, *sessionHandle)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sid := r.PathValue("sid")
		v, ok := s.sessions.Get(sid)
		if !ok {
			s.writeStatusError(w, http.StatusNotFound, "request",
				"no session %q: open one via POST /v1/specs/{id}/sessions (sessions are evicted after idling or under memory pressure)", sid)
			return
		}
		h(w, r, v.(*sessionHandle))
	}
}

// ---- POST /v1/sessions/{sid}/edits ---------------------------------------

// editsRequest is a batch of edit operations, applied in order with the
// engine's first-rejection-stops semantics.
type editsRequest struct {
	Ops []xic.EditOp `json:"ops"`
}

type rejectedJSON struct {
	Index      int             `json:"index"`
	Violations []violationJSON `json:"violations"`
	Repair     *repairJSON     `json:"repair,omitempty"`
}

type repairJSON struct {
	Msg string      `json:"msg"`
	Op  *xic.EditOp `json:"op,omitempty"`
}

type editsResponse struct {
	Applied  int           `json:"applied"`
	Elements int           `json:"elements"`
	Rejected *rejectedJSON `json:"rejected,omitempty"`
}

// handleEdits applies a batch of edits to the session. The response is
// 200 whether or not an op was rejected: rejection is the API working —
// the delta report and repair hint are the answer, and the document is
// untouched past the last accepted op.
func (s *server) handleEdits(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	var req editsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		s.writeStatusError(w, http.StatusBadRequest, "request", `missing "ops" field`)
		return
	}
	res := h.sess.Apply(req.Ops...)
	resp := editsResponse{Applied: res.Applied, Elements: res.Elements}
	if rej := res.Rejected; rej != nil {
		rj := &rejectedJSON{Index: rej.Index, Violations: violationsJSON(rej.Report.Violations)}
		if rej.Repair != nil {
			rj.Repair = &repairJSON{Msg: rej.Repair.Msg, Op: rej.Repair.Op}
		}
		resp.Rejected = rj
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ---- GET /v1/sessions/{sid} ----------------------------------------------

func (s *server) handleSessionMeta(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"session_id": r.PathValue("sid"),
		"spec_id":    h.specID,
		"ok":         true, // the session invariant: the document is valid
		"elements":   h.sess.Elements(),
	})
}

// ---- GET /v1/sessions/{sid}/document -------------------------------------

// handleSessionDocument serializes the session's current document — the
// round-trip complement of the open endpoint.
func (s *server) handleSessionDocument(w http.ResponseWriter, r *http.Request, h *sessionHandle) {
	s.statuses.Add("200", 1)
	w.Header().Set("Content-Type", "application/xml")
	w.Write([]byte(h.sess.Document())) //nolint:errcheck // response write failure has no recovery
}

// ---- DELETE /v1/sessions/{sid} -------------------------------------------

func (s *server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	if !s.sessions.Delete(sid) {
		s.writeStatusError(w, http.StatusNotFound, "request", "no session %q", sid)
		return
	}
	s.statuses.Add("204", 1)
	w.WriteHeader(http.StatusNoContent)
}

// violationsJSON maps a violation slice onto the wire shape shared with
// /validate.
func violationsJSON(vs []xic.Violation) []violationJSON {
	out := make([]violationJSON, 0, len(vs))
	for _, v := range vs {
		vj := violationJSON{Path: v.Path, Line: v.Line, Offset: v.Offset, Msg: v.Msg}
		if v.Constraint != nil {
			vj.Constraint = v.Constraint.String()
		}
		out = append(out, vj)
	}
	return out
}
