package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xic"
)

// The paper's Section 1 teachers example: compiles, NP class, inconsistent.
const teachersDTD = `
<!ELEMENT teachers (teacher+)>
<!ELEMENT teacher (teach, research)>
<!ELEMENT teach (subject, subject)>
<!ELEMENT research (#PCDATA)>
<!ELEMENT subject (#PCDATA)>
<!ATTLIST teacher name CDATA #REQUIRED>
<!ATTLIST subject taught_by CDATA #REQUIRED>`

const teachersXIC = `
teacher.name -> teacher
subject.taught_by -> subject
subject.taught_by => teacher.name`

// A consistent unary key/foreign-key specification with valid documents.
const dbDTD = `
<!ELEMENT db (emp*, dept*)>
<!ELEMENT emp EMPTY>
<!ELEMENT dept EMPTY>
<!ATTLIST emp id CDATA #REQUIRED works_in CDATA #REQUIRED>
<!ATTLIST dept id CDATA #REQUIRED>`

const dbXIC = `
emp.id -> emp
dept.id -> dept
emp.works_in => dept.id`

const dbDocOK = `<db>
  <emp id="e1" works_in="d1"/>
  <emp id="e2" works_in="d1"/>
  <dept id="d1"/>
</db>`

const dbDocBad = `<db>
  <emp id="e1" works_in="d1"/>
  <emp id="e1" works_in="d9"/>
  <dept id="d1"/>
</db>`

func newTestServer(t *testing.T, cfg config) *server {
	t.Helper()
	s := newServer(cfg)
	t.Cleanup(s.close)
	return s
}

// post sends a request through the full router and returns the recorder.
func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON response %q: %v", w.Body.String(), err)
	}
	return v
}

// compileSpec registers a spec through the API and returns its id.
func compileSpec(t *testing.T, h http.Handler, dtd, cons string) string {
	t.Helper()
	body, _ := json.Marshal(compileRequest{DTD: dtd, Constraints: cons})
	w := do(t, h, "POST", "/v1/specs", string(body))
	if w.Code != http.StatusCreated && w.Code != http.StatusOK {
		t.Fatalf("compile: status %d: %s", w.Code, w.Body)
	}
	return decode[compileResponse](t, w).ID
}

func TestCompileEndpoint(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	body, _ := json.Marshal(compileRequest{DTD: teachersDTD, Constraints: teachersXIC})

	w := do(t, h, "POST", "/v1/specs", string(body))
	if w.Code != http.StatusCreated {
		t.Fatalf("fresh compile: status %d: %s", w.Code, w.Body)
	}
	resp := decode[compileResponse](t, w)
	if resp.Cached {
		t.Error("fresh compile reported cached")
	}
	if want := xic.Fingerprint(teachersDTD, teachersXIC); resp.ID != want {
		t.Errorf("id = %q, want content fingerprint %q", resp.ID, want)
	}
	if resp.Constraints != 3 {
		t.Errorf("constraints = %d, want 3", resp.Constraints)
	}

	if resp.CompileMs <= 0 {
		t.Error("fresh compile reports no compile_ms")
	}

	w = do(t, h, "POST", "/v1/specs", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("cached compile: status %d", w.Code)
	}
	cachedResp := decode[compileResponse](t, w)
	if !cachedResp.Cached {
		t.Error("identical resubmission missed the cache")
	}
	if cachedResp.CompileMs != 0 {
		t.Error("cached response reports compile_ms although nothing compiled")
	}
}

func TestCompileErrors(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	for _, tc := range []struct {
		name, body string
		status     int
		kind       string
	}{
		{"bad json", `{"dtd": `, 400, "request"},
		{"missing dtd", `{"constraints": "a.b -> a"}`, 400, "request"},
		{"dtd syntax error", `{"dtd": "<!ELEMENT"}`, 400, "parse"},
		{"constraint against missing type", fmt.Sprintf(`{"dtd": %q, "constraints": "nosuch.a -> nosuch"}`, "<!ELEMENT r EMPTY>"), 422, "spec"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, h, "POST", "/v1/specs", tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body)
			}
			env := decode[map[string]errorBody](t, w)
			if env["error"].Kind != tc.kind {
				t.Errorf("kind %q, want %q (%s)", env["error"].Kind, tc.kind, w.Body)
			}
		})
	}
}

func TestUnknownSpec(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	for _, ep := range []string{"consistent", "implies", "diagnose", "validate"} {
		if w := do(t, h, "POST", "/v1/specs/deadbeef/"+ep, ""); w.Code != http.StatusNotFound {
			t.Errorf("%s on unknown spec: status %d, want 404", ep, w.Code)
		}
	}
	if w := do(t, h, "GET", "/v1/specs/deadbeef", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown spec: status %d, want 404", w.Code)
	}
}

func TestConsistentEndpoint(t *testing.T) {
	h := newTestServer(t, config{}).handler()

	teachers := compileSpec(t, h, teachersDTD, teachersXIC)
	w := do(t, h, "POST", "/v1/specs/"+teachers+"/consistent", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if res := decode[consistentResult](t, w); res.Consistent {
		t.Error("teachers specification must be inconsistent")
	}

	db := compileSpec(t, h, dbDTD, dbXIC)
	w = do(t, h, "POST", "/v1/specs/"+db+"/consistent", "")
	res := decode[consistentResult](t, w)
	if !res.Consistent {
		t.Fatal("db specification must be consistent")
	}
	if res.Witness == "" {
		t.Error("consistent answer carries no witness")
	}
	w = do(t, h, "POST", "/v1/specs/"+db+"/consistent", `{"skip_witness": true}`)
	if res := decode[consistentResult](t, w); res.Witness != "" {
		t.Error("skip_witness still produced a witness")
	}

	// A per-request extension flips the verdict: Σ keeps emp.id a key, so
	// adding its negation leaves no satisfying document.
	w = do(t, h, "POST", "/v1/specs/"+db+"/consistent", `{"extra": ["not emp.id -> emp"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("extra: status %d: %s", w.Code, w.Body)
	}
	if res := decode[consistentResult](t, w); res.Consistent {
		t.Error("Σ + ¬(emp.id -> emp) must be inconsistent")
	}
}

func TestConsistentBatch(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)
	body := `{"sets": [[], ["not dept.id -> dept"], ["bogus ->"]], "skip_witness": true}`
	w := do(t, h, "POST", "/v1/specs/"+db+"/consistent", body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("batch with unparseable member: status %d, want 400", w.Code)
	}

	// "extra" does not compose with "sets"; refusing beats silently
	// answering a different question than the client asked.
	body = `{"extra": ["not emp.id -> emp"], "sets": [[]]}`
	if w := do(t, h, "POST", "/v1/specs/"+db+"/consistent", body); w.Code != http.StatusBadRequest {
		t.Fatalf("extra+sets: status %d, want 400", w.Code)
	}

	body = `{"sets": [[], ["not dept.id -> dept"]], "skip_witness": true}`
	w = do(t, h, "POST", "/v1/specs/"+db+"/consistent", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", w.Code, w.Body)
	}
	resp := decode[struct {
		Results []consistentResult `json:"results"`
	}](t, w)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if !resp.Results[0].Consistent {
		t.Error("Σ alone must be consistent")
	}
}

func TestImpliesEndpoint(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)

	// Σ contains emp.id -> emp, so it is trivially implied.
	w := do(t, h, "POST", "/v1/specs/"+db+"/implies", `{"query": "emp.id -> emp"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if res := decode[impliesResult](t, w); !res.Implied {
		t.Error("member of Σ not implied")
	}

	// dept.id ⊆ emp.works_in does not follow; expect a counterexample.
	w = do(t, h, "POST", "/v1/specs/"+db+"/implies", `{"query": "dept.id <= emp.works_in"}`)
	res := decode[impliesResult](t, w)
	if res.Implied {
		t.Error("reverse inclusion wrongly implied")
	}
	if res.Counterexample == "" {
		t.Error("failed implication carries no counterexample")
	}

	// Batch.
	w = do(t, h, "POST", "/v1/specs/"+db+"/implies", `{"queries": ["emp.id -> emp", "dept.id <= emp.works_in"]}`)
	batch := decode[struct {
		Results []impliesResult `json:"results"`
	}](t, w)
	if len(batch.Results) != 2 || !batch.Results[0].Implied || batch.Results[1].Implied {
		t.Errorf("batch results wrong: %+v", batch.Results)
	}

	// Missing query.
	if w := do(t, h, "POST", "/v1/specs/"+db+"/implies", `{}`); w.Code != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", w.Code)
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	h := newTestServer(t, config{}).handler()

	teachers := compileSpec(t, h, teachersDTD, teachersXIC)
	w := do(t, h, "POST", "/v1/specs/"+teachers+"/diagnose", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	diag := decode[struct {
		DTDEmpty bool     `json:"dtd_empty"`
		Core     []string `json:"core"`
	}](t, w)
	if diag.DTDEmpty {
		t.Error("teachers DTD has valid trees")
	}
	if len(diag.Core) == 0 {
		t.Error("inconsistent spec has an empty core")
	}

	// Diagnosing a consistent spec is a client-state error, not a 500.
	db := compileSpec(t, h, dbDTD, dbXIC)
	w = do(t, h, "POST", "/v1/specs/"+db+"/diagnose", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("diagnose consistent spec: status %d, want 409: %s", w.Code, w.Body)
	}
	if env := decode[map[string]errorBody](t, w); env["error"].Kind != "consistent" {
		t.Errorf("kind = %q, want consistent", env["error"].Kind)
	}
}

func TestUndecidableMapsTo422(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	// Multi-attribute key mixed with a foreign key: compiles, but static
	// consistency is undecidable (Theorem 3.1).
	undecDTD := `
<!ELEMENT db (course*, dept*)>
<!ELEMENT course EMPTY>
<!ELEMENT dept EMPTY>
<!ATTLIST course dep CDATA #REQUIRED num CDATA #REQUIRED>
<!ATTLIST dept id CDATA #REQUIRED>`
	undecXIC := `
course(dep, num) -> course
course.dep => dept.id`
	id := compileSpec(t, h, undecDTD, undecXIC)
	w := do(t, h, "POST", "/v1/specs/"+id+"/consistent", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", w.Code, w.Body)
	}
	if env := decode[map[string]errorBody](t, w); env["error"].Kind != "undecidable" {
		t.Errorf("kind = %q, want undecidable", env["error"].Kind)
	}
	// …but dynamic validation of that same spec still works.
	w = do(t, h, "POST", "/v1/specs/"+id+"/validate",
		`<db><course dep="cs" num="101"/><dept id="cs"/></db>`)
	if w.Code != http.StatusOK {
		t.Fatalf("validate under undecidable class: status %d: %s", w.Code, w.Body)
	}
	if res := decode[validateResponse](t, w); !res.OK {
		t.Errorf("document should validate: %+v", res)
	}
}

func TestValidateEndpoint(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)

	w := do(t, h, "POST", "/v1/specs/"+db+"/validate", dbDocOK)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	res := decode[validateResponse](t, w)
	if !res.OK || res.Elements != 4 {
		t.Errorf("valid doc: got %+v", res)
	}

	w = do(t, h, "POST", "/v1/specs/"+db+"/validate", dbDocBad)
	res = decode[validateResponse](t, w)
	if res.OK {
		t.Fatal("duplicate emp.id and dangling works_in reported valid")
	}
	if len(res.Violations) < 2 {
		t.Errorf("want ≥2 violations (key + foreign key), got %+v", res.Violations)
	}
	for _, v := range res.Violations {
		if v.Constraint == "" {
			t.Errorf("violation without constraint: %+v", v)
		}
	}

	// Malformed XML is a 400 parse error with a position.
	w = do(t, h, "POST", "/v1/specs/"+db+"/validate", "<db><emp id=")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed doc: status %d, want 400: %s", w.Code, w.Body)
	}
	if env := decode[map[string]errorBody](t, w); env["error"].Kind != "parse" || env["error"].Input != "document" {
		t.Errorf("malformed doc error: %+v", env["error"])
	}
}

func TestBodyLimits(t *testing.T) {
	// JSON endpoints bound by MaxBody, validate by MaxDoc.
	h := newTestServer(t, config{MaxBody: 1024, MaxDoc: 1024}).handler()

	big, _ := json.Marshal(compileRequest{DTD: strings.Repeat("<!ELEMENT r EMPTY>", 100)})
	w := do(t, h, "POST", "/v1/specs", string(big))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized compile body: status %d, want 413", w.Code)
	}

	db := compileSpec(t, h, dbDTD, dbXIC) // small enough? dbDTD+dbXIC ≈ 250 bytes JSON — may exceed 256
	doc := "<db>" + strings.Repeat(`<dept id="d"/>`, 100) + "</db>"
	w = do(t, h, "POST", "/v1/specs/"+db+"/validate", doc)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized document: status %d, want 413: %s", w.Code, w.Body)
	}
}

func TestTimeoutCancelsMidSolve(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	id := compileSpec(t, h, teachersDTD, teachersXIC)

	// A deadline far below the NP search's cost lands inside the ILP
	// branch-and-bound, which must surface as 504/"canceled".
	w := do(t, h, "POST", "/v1/specs/"+id+"/consistent?timeout=1ns", "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body)
	}
	if env := decode[map[string]errorBody](t, w); env["error"].Kind != "canceled" {
		t.Errorf("kind = %q, want canceled", env["error"].Kind)
	}

	// Same via the JSON field.
	w = do(t, h, "POST", "/v1/specs/"+id+"/consistent", `{"timeout": "1ns"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("JSON timeout: status %d, want 504", w.Code)
	}

	// Bad timeout strings are request errors.
	if w := do(t, h, "POST", "/v1/specs/"+id+"/consistent?timeout=soon", ""); w.Code != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d, want 400", w.Code)
	}
}

// TestClientDisconnectCancels drops the client mid-request over a real
// connection and checks the server keeps serving afterwards.
func TestClientDisconnectCancels(t *testing.T) {
	s := newTestServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/specs", "application/json",
		bytes.NewReader(mustJSON(compileRequest{DTD: teachersDTD, Constraints: teachersXIC})))
	if err != nil {
		t.Fatal(err)
	}
	var cr compileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/specs/"+cr.ID+"/consistent", nil)
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The solve may legitimately win the race; just drain it.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}

	// The server is still healthy and the cached spec still answers.
	resp, err = http.Post(ts.URL+"/v1/specs/"+cr.ID+"/consistent", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-disconnect request: status %d: %s", resp.StatusCode, body)
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// TestConcurrentRequestsOneSpec hammers one cached spec from many
// goroutines across every endpoint; run under -race this doubles as the
// registry/Spec concurrency audit.
func TestConcurrentRequestsOneSpec(t *testing.T) {
	s := newTestServer(t, config{})
	h := s.handler()
	db := compileSpec(t, h, dbDTD, dbXIC)

	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				switch (i + j) % 4 {
				case 0:
					w := do(t, h, "POST", "/v1/specs/"+db+"/consistent", `{"skip_witness": true}`)
					if w.Code != http.StatusOK {
						t.Errorf("consistent: status %d", w.Code)
					}
				case 1:
					w := do(t, h, "POST", "/v1/specs/"+db+"/validate", dbDocOK)
					if w.Code != http.StatusOK {
						t.Errorf("validate: status %d", w.Code)
					}
				case 2:
					w := do(t, h, "POST", "/v1/specs/"+db+"/implies", `{"query": "emp.id -> emp"}`)
					if w.Code != http.StatusOK {
						t.Errorf("implies: status %d", w.Code)
					}
				case 3:
					body, _ := json.Marshal(compileRequest{DTD: dbDTD, Constraints: dbXIC})
					w := do(t, h, "POST", "/v1/specs", string(body))
					if w.Code != http.StatusOK {
						t.Errorf("re-compile: status %d (want cached 200)", w.Code)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	st := s.reg.Stats()
	if st.Misses != 1 {
		t.Errorf("registry misses = %d, want 1 (every request shares one compiled spec)", st.Misses)
	}
	if st.Hits < workers {
		t.Errorf("registry hits = %d, suspiciously low", st.Hits)
	}
}

func TestMetaHealthAndVars(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)

	w := do(t, h, "GET", "/v1/specs/"+db, "")
	if w.Code != http.StatusOK {
		t.Fatalf("meta: status %d", w.Code)
	}
	meta := decode[struct {
		Class       string   `json:"class"`
		Constraints []string `json:"constraints"`
	}](t, w)
	if len(meta.Constraints) != 3 || meta.Class == "" {
		t.Errorf("meta = %+v", meta)
	}

	if w := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz: status %d", w.Code)
	}

	// Drive one cache hit, then read the counters back.
	do(t, h, "POST", "/v1/specs/"+db+"/consistent", `{"skip_witness": true}`)
	w = do(t, h, "GET", "/debug/vars", "")
	type tierVars struct {
		Size      int    `json:"size"`
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Errors    uint64 `json:"errors"`
	}
	vars := decode[struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Specs  int    `json:"specs"` // legacy roll-up: cached spec count
			Tiers  struct {
				Schemas tierVars `json:"schemas"`
				Specs   tierVars `json:"specs"`
			} `json:"tiers"`
		} `json:"cache"`
		Specs []struct {
			ID       string `json:"id"`
			SchemaID string `json:"schema_id"`
		} `json:"specs"`
		ImplCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"impl_cache"`
		Solve struct {
			Solves          uint64 `json:"solves"`
			PresolveDecided uint64 `json:"presolve_decided"`
			FastPath        uint64 `json:"fastpath"`
			RowsIn          uint64 `json:"presolve_rows_in"`
			VarsFixed       uint64 `json:"vars_fixed"`
		} `json:"solve"`
		Requests map[string]int64 `json:"requests_total"`
	}](t, w)
	if vars.Cache.Misses != 1 || vars.Cache.Hits < 1 || vars.Cache.Specs != 1 {
		t.Errorf("legacy cache roll-up = %+v", vars.Cache)
	}
	// Per-tier counters: one schema compiled, one spec bound, both reused.
	if vars.Cache.Tiers.Specs.Size != 1 || vars.Cache.Tiers.Specs.Misses != 1 || vars.Cache.Tiers.Specs.Hits < 1 {
		t.Errorf("spec-tier vars = %+v", vars.Cache.Tiers.Specs)
	}
	if vars.Cache.Tiers.Schemas.Size != 1 || vars.Cache.Tiers.Schemas.Misses != 1 {
		t.Errorf("schema-tier vars = %+v", vars.Cache.Tiers.Schemas)
	}
	// The registry entry listing carries both fingerprint halves.
	if len(vars.Specs) != 1 || vars.Specs[0].ID != db || vars.Specs[0].SchemaID != db[:64] {
		t.Errorf("specs listing = %+v", vars.Specs)
	}
	if vars.Requests["consistent"] < 1 || vars.Requests["compile"] < 1 {
		t.Errorf("request counters = %+v", vars.Requests)
	}
	// The db specification is in the NP class, so its consistency check hit
	// the ILP oracle; the presolve layer must have seen its system.
	if vars.Solve.Solves < 1 {
		t.Errorf("solve counters not wired: %+v", vars.Solve)
	}
	if vars.Solve.RowsIn == 0 {
		t.Errorf("presolve saw no rows on an NP-class check: %+v", vars.Solve)
	}
	if vars.Solve.PresolveDecided+vars.Solve.FastPath+vars.Solve.VarsFixed == 0 {
		t.Errorf("presolve did nothing on the db encoding: %+v", vars.Solve)
	}
}

// TestSchemaEndpointsAndBindByFingerprint covers the two-stage serving
// flow: register the DTD once, then bind constraint sets against its
// fingerprint so no later compile touches the DTD again.
func TestSchemaEndpointsAndBindByFingerprint(t *testing.T) {
	h := newTestServer(t, config{}).handler()

	body, _ := json.Marshal(compileSchemaRequest{DTD: dbDTD})
	w := do(t, h, "POST", "/v1/schemas", string(body))
	if w.Code != http.StatusCreated {
		t.Fatalf("fresh schema compile: status %d: %s", w.Code, w.Body)
	}
	sch := decode[compileSchemaResponse](t, w)
	if want := xic.FingerprintDTD(dbDTD); sch.ID != want {
		t.Errorf("schema id = %q, want DTD fingerprint %q", sch.ID, want)
	}
	if sch.Cached || sch.CompileMs <= 0 || !sch.DTDConsistent {
		t.Errorf("fresh schema response = %+v", sch)
	}

	// Byte-identical resubmission hits the schema tier.
	if w = do(t, h, "POST", "/v1/schemas", string(body)); w.Code != http.StatusOK {
		t.Fatalf("cached schema compile: status %d", w.Code)
	}
	if resp := decode[compileSchemaResponse](t, w); !resp.Cached || resp.CompileMs != 0 {
		t.Errorf("cached schema response = %+v", resp)
	}

	// Schema metadata by fingerprint.
	w = do(t, h, "GET", "/v1/schemas/"+sch.ID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("schema meta: status %d: %s", w.Code, w.Body)
	}
	meta := decode[struct {
		Root  string `json:"root"`
		Types int    `json:"types"`
	}](t, w)
	if meta.Root != "db" || meta.Types != 3 {
		t.Errorf("schema meta = %+v", meta)
	}

	// Bind a constraint set by fingerprint: no DTD source in the request,
	// no DTD compilation on the server (compile_ms stays zero).
	bind, _ := json.Marshal(compileRequest{DTDID: sch.ID, Constraints: dbXIC})
	w = do(t, h, "POST", "/v1/specs", string(bind))
	if w.Code != http.StatusCreated {
		t.Fatalf("bind by fingerprint: status %d: %s", w.Code, w.Body)
	}
	spec := decode[compileResponse](t, w)
	if spec.SchemaID != sch.ID || spec.Cached || spec.CompileMs != 0 {
		t.Errorf("bind response = %+v, want schema_id %q and zero compile_ms", spec, sch.ID)
	}
	if spec.ID != sch.ID+xic.FingerprintConstraints(dbXIC) {
		t.Errorf("spec id %q is not schema fingerprint + constraints fingerprint", spec.ID)
	}

	// The bound spec is indistinguishable from a source-compiled one: it
	// serves decisions, and a full-source compile of the same pair hits it.
	w = do(t, h, "POST", "/v1/specs/"+spec.ID+"/consistent", `{"skip_witness": true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("consistent on bound spec: status %d: %s", w.Code, w.Body)
	}
	if res := decode[consistentResult](t, w); !res.Consistent {
		t.Error("db specification must be consistent")
	}
	full, _ := json.Marshal(compileRequest{DTD: dbDTD, Constraints: dbXIC})
	if w = do(t, h, "POST", "/v1/specs", string(full)); w.Code != http.StatusOK {
		t.Errorf("full-source recompile of a bound pair: status %d, want cached 200", w.Code)
	}

	// A second set binds against the same schema without recompiling it.
	bind2, _ := json.Marshal(compileRequest{DTDID: sch.ID, Constraints: "emp.id -> emp"})
	w = do(t, h, "POST", "/v1/specs", string(bind2))
	if w.Code != http.StatusCreated {
		t.Fatalf("second bind: status %d: %s", w.Code, w.Body)
	}
	if resp := decode[compileResponse](t, w); resp.CompileMs != 0 {
		t.Errorf("second bind recompiled the schema: %+v", resp)
	}

	// Unknown fingerprints are a 404, mutual exclusion a 400.
	bad, _ := json.Marshal(compileRequest{DTDID: strings.Repeat("0", 64), Constraints: dbXIC})
	if w = do(t, h, "POST", "/v1/specs", string(bad)); w.Code != http.StatusNotFound {
		t.Errorf("unknown dtd_id: status %d, want 404: %s", w.Code, w.Body)
	}
	both, _ := json.Marshal(compileRequest{DTD: dbDTD, DTDID: sch.ID, Constraints: dbXIC})
	if w = do(t, h, "POST", "/v1/specs", string(both)); w.Code != http.StatusBadRequest {
		t.Errorf("dtd and dtd_id together: status %d, want 400", w.Code)
	}

	// Bad constraints against a valid schema fail with the usual taxonomy.
	badCons, _ := json.Marshal(compileRequest{DTDID: sch.ID, Constraints: "nosuch.a -> nosuch"})
	if w = do(t, h, "POST", "/v1/specs", string(badCons)); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad constraints by fingerprint: status %d, want 422: %s", w.Code, w.Body)
	}
}

// TestImplicationMemoAcrossRequests drives the same implication query twice
// and reads the schema-wide memo counters back through the meta endpoint.
func TestImplicationMemoAcrossRequests(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)
	for i := 0; i < 2; i++ {
		w := do(t, h, "POST", "/v1/specs/"+db+"/implies", `{"query": "emp.id -> emp"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("implies #%d: status %d: %s", i, w.Code, w.Body)
		}
		if res := decode[impliesResult](t, w); !res.Implied {
			t.Fatalf("implies #%d: member of Σ not implied", i)
		}
	}
	w := do(t, h, "GET", "/v1/schemas/"+db[:64], "")
	if w.Code != http.StatusOK {
		t.Fatalf("schema meta: status %d: %s", w.Code, w.Body)
	}
	meta := decode[struct {
		ImplCache struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"impl_cache"`
	}](t, w)
	if meta.ImplCache.Hits < 1 || meta.ImplCache.Misses < 1 || meta.ImplCache.Entries < 1 {
		t.Errorf("implication memo idle after repeated query: %+v", meta.ImplCache)
	}
}

// TestSolverRequestOptions: the per-request solver knobs tune the check
// without changing verdicts, nonsense values are a 400, and the new
// kernel/parallelism counters plus the effective defaults appear under
// /debug/vars.
func TestSolverRequestOptions(t *testing.T) {
	h := newTestServer(t, config{}).handler()
	db := compileSpec(t, h, dbDTD, dbXIC)
	teachers := compileSpec(t, h, teachersDTD, teachersXIC)

	// Tuned requests keep their verdicts: parallel search on the
	// inconsistent teachers spec, exact-kernel solve on the consistent db
	// spec.
	w := do(t, h, "POST", "/v1/specs/"+teachers+"/consistent",
		`{"solver_parallelism": 4, "skip_witness": true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("parallel consistent: status %d: %s", w.Code, w.Body)
	}
	if res := decode[consistentResult](t, w); res.Consistent {
		t.Error("teachers specification must stay inconsistent under parallel search")
	}
	w = do(t, h, "POST", "/v1/specs/"+db+"/consistent", `{"fast_tableau": false}`)
	if w.Code != http.StatusOK {
		t.Fatalf("exact consistent: status %d: %s", w.Code, w.Body)
	}
	if res := decode[consistentResult](t, w); !res.Consistent {
		t.Error("db specification must stay consistent on the exact kernel")
	}
	w = do(t, h, "POST", "/v1/specs/"+db+"/implies",
		`{"query": "emp.id -> emp", "solver_parallelism": 2, "fast_tableau": false}`)
	if w.Code != http.StatusOK {
		t.Fatalf("tuned implies: status %d: %s", w.Code, w.Body)
	}
	if res := decode[impliesResult](t, w); !res.Implied {
		t.Error("member of Σ must be implied under tuned options")
	}

	// Nonsense values are rejected up front, before any solving.
	for _, body := range []string{
		`{"solver_parallelism": -1}`,
		`{"solver_parallelism": 65}`,
		`{"solver_parallelism": "many"}`,
		`{"fast_tableau": "yes"}`,
	} {
		if w := do(t, h, "POST", "/v1/specs/"+db+"/consistent", body); w.Code != http.StatusBadRequest {
			t.Errorf("consistent %s: status %d, want 400", body, w.Code)
		}
		if w := do(t, h, "POST", "/v1/specs/"+db+"/implies", body); w.Code != http.StatusBadRequest {
			t.Errorf("implies %s: status %d, want 400", body, w.Code)
		}
	}

	// The solve vars report the kernel split and the effective defaults.
	w = do(t, h, "GET", "/debug/vars", "")
	vars := decode[struct {
		Solve struct {
			Solves         uint64 `json:"solves"`
			Pivots         uint64 `json:"pivots"`
			FastPivots     uint64 `json:"fast_pivots"`
			ExactFallbacks uint64 `json:"exact_fallbacks"`
			Steals         uint64 `json:"steals"`
			Cuts           uint64 `json:"cuts"`
			Options        struct {
				MaxNodes          int  `json:"max_nodes"`
				SolverParallelism int  `json:"solver_parallelism"`
				Presolve          bool `json:"presolve"`
				FastTableau       bool `json:"fast_tableau"`
				SkipWitness       bool `json:"skip_witness"`
			} `json:"options"`
		} `json:"solve"`
	}](t, w)
	if vars.Solve.Solves < 3 {
		t.Errorf("solve counters = %+v, want at least the three tuned checks", vars.Solve)
	}
	o := vars.Solve.Options
	if o.MaxNodes != xic.DefaultMaxNodes || o.SolverParallelism != 0 || !o.Presolve || !o.FastTableau || o.SkipWitness {
		t.Errorf("effective options = %+v", o)
	}
}

// TestSessionLifecycle drives a document session end-to-end through the
// HTTP surface: open, inspect, edit (accepted and rejected), fetch the
// document, close.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, config{})
	h := s.handler()

	compile, _ := json.Marshal(map[string]string{"dtd": dbDTD, "constraints": dbXIC})
	id := decode[compileResponse](t, do(t, h, "POST", "/v1/specs", string(compile))).ID

	// An invalid document is refused with the violation report.
	w := do(t, h, "POST", "/v1/specs/"+id+"/sessions", dbDocBad)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid open: status %d: %s", w.Code, w.Body)
	}

	// A valid one opens.
	w = do(t, h, "POST", "/v1/specs/"+id+"/sessions", dbDocOK)
	if w.Code != http.StatusCreated {
		t.Fatalf("open: status %d: %s", w.Code, w.Body)
	}
	open := decode[openSessionResponse](t, w)
	if open.SessionID == "" || open.Elements != 4 {
		t.Fatalf("open response %+v", open)
	}

	w = do(t, h, "GET", "/v1/sessions/"+open.SessionID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("meta: status %d: %s", w.Code, w.Body)
	}

	// A batch: one accepted insert, then a duplicate-key insert that is
	// rejected with a delta report, leaving the first applied.
	ops, _ := json.Marshal(map[string]any{"ops": []map[string]any{
		{"kind": "insert", "path": "db", "index": 3, "xml": `<dept id="d2"/>`},
		{"kind": "insert", "path": "db", "index": 4, "xml": `<dept id="d2"/>`},
	}})
	w = do(t, h, "POST", "/v1/sessions/"+open.SessionID+"/edits", string(ops))
	if w.Code != http.StatusOK {
		t.Fatalf("edits: status %d: %s", w.Code, w.Body)
	}
	res := decode[editsResponse](t, w)
	if res.Applied != 1 || res.Rejected == nil || res.Rejected.Index != 1 {
		t.Fatalf("edits response %+v", res)
	}
	if len(res.Rejected.Violations) == 0 {
		t.Fatalf("rejection carries no violations: %+v", res.Rejected)
	}

	// The served document reflects the accepted edit and revalidates.
	w = do(t, h, "GET", "/v1/sessions/"+open.SessionID+"/document", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `id="d2"`) {
		t.Fatalf("document: status %d: %s", w.Code, w.Body)
	}
	vw := do(t, h, "POST", "/v1/specs/"+id+"/validate", w.Body.String())
	if vr := decode[validateResponse](t, vw); !vr.OK {
		t.Fatalf("session document does not revalidate: %s", vw.Body)
	}

	// An edit rejected for a dangling reference carries a repair hint.
	ops, _ = json.Marshal(map[string]any{"ops": []map[string]any{
		{"kind": "setattr", "path": "db/emp[0]", "attr": "works_in", "value": "d9"},
	}})
	res = decode[editsResponse](t, do(t, h, "POST", "/v1/sessions/"+open.SessionID+"/edits", string(ops)))
	if res.Rejected == nil || res.Rejected.Repair == nil {
		t.Fatalf("dangling-ref edit: %+v", res)
	}

	// Close, then the handle is gone.
	if w = do(t, h, "DELETE", "/v1/sessions/"+open.SessionID, ""); w.Code != http.StatusNoContent {
		t.Fatalf("close: status %d: %s", w.Code, w.Body)
	}
	if w = do(t, h, "GET", "/v1/sessions/"+open.SessionID, ""); w.Code != http.StatusNotFound {
		t.Fatalf("after close: status %d: %s", w.Code, w.Body)
	}
}

// TestSessionEdgeCases covers the session endpoints' request-level errors
// and the expvar sessions block.
func TestSessionEdgeCases(t *testing.T) {
	s := newTestServer(t, config{})
	h := s.handler()

	compile, _ := json.Marshal(map[string]string{"dtd": dbDTD, "constraints": dbXIC})
	id := decode[compileResponse](t, do(t, h, "POST", "/v1/specs", string(compile))).ID

	// Malformed XML is a 4xx, not a session.
	if w := do(t, h, "POST", "/v1/specs/"+id+"/sessions", "<db><oops"); w.Code/100 != 4 {
		t.Fatalf("malformed open: status %d: %s", w.Code, w.Body)
	}
	// Unknown session handles are 404 on every verb.
	for _, c := range [][2]string{
		{"GET", "/v1/sessions/zz"},
		{"GET", "/v1/sessions/zz/document"},
		{"POST", "/v1/sessions/zz/edits"},
		{"DELETE", "/v1/sessions/zz"},
	} {
		if w := do(t, h, c[0], c[1], `{"ops":[{"kind":"delete","path":"db"}]}`); w.Code != http.StatusNotFound {
			t.Fatalf("%s %s: status %d: %s", c[0], c[1], w.Code, w.Body)
		}
	}
	// An empty batch is a 400.
	w := do(t, h, "POST", "/v1/specs/"+id+"/sessions", dbDocOK)
	open := decode[openSessionResponse](t, w)
	if w := do(t, h, "POST", "/v1/sessions/"+open.SessionID+"/edits", `{}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", w.Code, w.Body)
	}
	// The expvar block reports the live session.
	vars := decode[map[string]any](t, do(t, h, "GET", "/debug/vars", ""))
	sess, ok := vars["sessions"].(map[string]any)
	if !ok || sess["size"].(float64) != 1 || sess["opens"].(float64) != 1 {
		t.Fatalf("expvar sessions block: %v", vars["sessions"])
	}
}

// TestSessionLRUCapacity: opening past -max-sessions evicts the oldest
// handle and reports it to the opener.
func TestSessionLRUCapacity(t *testing.T) {
	s := newTestServer(t, config{MaxSessions: 2})
	h := s.handler()

	compile, _ := json.Marshal(map[string]string{"dtd": dbDTD, "constraints": dbXIC})
	id := decode[compileResponse](t, do(t, h, "POST", "/v1/specs", string(compile))).ID

	var ids []string
	for i := 0; i < 3; i++ {
		open := decode[openSessionResponse](t, do(t, h, "POST", "/v1/specs/"+id+"/sessions", dbDocOK))
		ids = append(ids, open.SessionID)
		if i < 2 && len(open.Evicted) != 0 {
			t.Fatalf("open %d evicted %v", i, open.Evicted)
		}
		if i == 2 && (len(open.Evicted) != 1 || open.Evicted[0] != ids[0]) {
			t.Fatalf("open 2 evicted %v, want [%s]", open.Evicted, ids[0])
		}
	}
	if w := do(t, h, "GET", "/v1/sessions/"+ids[0], ""); w.Code != http.StatusNotFound {
		t.Fatalf("evicted session still resolves: %d", w.Code)
	}
	if w := do(t, h, "GET", "/v1/sessions/"+ids[1], ""); w.Code != http.StatusOK {
		t.Fatalf("live session lost: %d", w.Code)
	}
}
