// Command benchdiff gates streaming-validation performance in CI: it
// compares a freshly measured BENCH_validate.json against the committed
// baseline and exits non-zero when stream validation regressed.
//
// Usage:
//
//	benchdiff -baseline BENCH_validate.json -current BENCH_current.json \
//	          [-peak-tolerance 0.20] [-time-tolerance 0.20] [-min-time-ms 2]
//
// For every node-count present in both files it checks the stream
// validator's peak heap and wall time; a value more than the tolerance
// above baseline is a regression. Peak heap is allocation-deterministic,
// so its tolerance can be tight even across machines; wall time is noisy
// on shared CI runners, so its tolerance is a flag, and measurements under
// -min-time-ms are never time-gated (a 1 ms phase doubling is noise).
// Baselines are refreshed by committing a new BENCH_validate.json (see
// README, "Refreshing the benchmark baseline").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors the schema TestWriteValidateBench writes.
type record struct {
	Nodes           int     `json:"nodes"`
	DocBytes        int     `json:"doc_bytes"`
	TreePeakBytes   uint64  `json:"tree_peak_bytes"`
	StreamPeakBytes uint64  `json:"stream_peak_bytes"`
	PeakRatio       float64 `json:"peak_ratio"`
	TreeMs          float64 `json:"tree_ms"`
	StreamMs        float64 `json:"stream_ms"`
}

// tolerances configures the gate.
type tolerances struct {
	peak      float64 // allowed relative growth of stream_peak_bytes
	time      float64 // allowed relative growth of stream_ms
	minTimeMs float64 // time gate floor: below this, wall time is all noise
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_validate.json", "committed baseline")
	currentPath := flag.String("current", "", "freshly measured results")
	peakTol := flag.Float64("peak-tolerance", 0.20, "allowed relative stream peak-heap growth")
	timeTol := flag.Float64("time-tolerance", 0.20, "allowed relative stream wall-time growth")
	minTimeMs := flag.Float64("min-time-ms", 2, "skip the time gate below this many baseline ms")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: missing -current")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressions := compare(base, cur, tolerances{peak: *peakTol, time: *timeTol, minTimeMs: *minTimeMs})
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}

func load(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}
	return recs, nil
}

// compare matches current records to baseline records by node count and
// applies the gates. It returns human-readable comparison lines and the
// regression list (empty = pass). Node counts present in only one file are
// reported but never gate, so widening or narrowing the benchmark matrix
// does not fail the job by itself.
func compare(base, cur []record, tol tolerances) (report, regressions []string) {
	byNodes := make(map[int]record, len(base))
	for _, b := range base {
		byNodes[b.Nodes] = b
	}
	for _, c := range cur {
		b, ok := byNodes[c.Nodes]
		if !ok {
			report = append(report, fmt.Sprintf("nodes=%d: no baseline entry (informational): stream peak %s, %.1f ms",
				c.Nodes, mb(c.StreamPeakBytes), c.StreamMs))
			continue
		}
		delete(byNodes, c.Nodes)
		peakGrowth := growth(float64(b.StreamPeakBytes), float64(c.StreamPeakBytes))
		timeGrowth := growth(b.StreamMs, c.StreamMs)
		report = append(report, fmt.Sprintf(
			"nodes=%d: stream peak %s → %s (%+.1f%%, limit +%.0f%%), stream time %.1f ms → %.1f ms (%+.1f%%, limit +%.0f%%)",
			c.Nodes, mb(b.StreamPeakBytes), mb(c.StreamPeakBytes), 100*peakGrowth, 100*tol.peak,
			b.StreamMs, c.StreamMs, 100*timeGrowth, 100*tol.time))
		if peakGrowth > tol.peak {
			regressions = append(regressions, fmt.Sprintf(
				"nodes=%d: stream peak heap grew %.1f%% (%s → %s), tolerance %.0f%%",
				c.Nodes, 100*peakGrowth, mb(b.StreamPeakBytes), mb(c.StreamPeakBytes), 100*tol.peak))
		}
		if b.StreamMs >= tol.minTimeMs && timeGrowth > tol.time {
			regressions = append(regressions, fmt.Sprintf(
				"nodes=%d: stream time grew %.1f%% (%.1f ms → %.1f ms), tolerance %.0f%%",
				c.Nodes, 100*timeGrowth, b.StreamMs, c.StreamMs, 100*tol.time))
		}
	}
	for nodes := range byNodes {
		report = append(report, fmt.Sprintf("nodes=%d: present in baseline only (informational)", nodes))
	}
	return report, regressions
}

// growth returns (cur-base)/base; a zero baseline only regresses if the
// current value is non-zero.
func growth(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}

func mb(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}
