// Command benchdiff gates benchmark performance in CI: it compares a
// freshly measured JSON benchmark file against the committed baseline and
// exits non-zero on a regression. Two benchmark kinds are understood:
//
//	-kind validate (default): the streaming-validation records of
//	BENCH_validate.json (TestWriteValidateBench). For every node-count
//	present in both files it checks the stream validator's peak heap and
//	wall time.
//
//	-kind solve: the accelerated-vs-raw solver records of BENCH_solve.json
//	(TestWriteSolveBench). For every corpus case present in both files it
//	checks the accelerated solver's wall time and its speedup over the raw
//	solver (-min-speedup, so the presolve + fast-tableau stack cannot
//	silently decay into overhead), and optionally the corpus-wide
//	aggregate speedup of the current file (-min-aggregate-speedup).
//
//	-kind compile: the two-stage compile/bind records of
//	BENCH_compile.json (TestWriteCompileBench). For every specs/ corpus
//	case present in both files it checks the warm Bind-plus-check wall
//	time and its speedup over cold Compile-plus-check (-min-speedup, so
//	Schema.Bind cannot silently decay back toward full recompilation).
//
//	-kind edit: the session-vs-restream records of BENCH_edit.json
//	(TestWriteEditBench). For every corpus case present in both files it
//	checks the session-side wall time and its speedup over naive
//	edit-and-restream (-min-speedup), and optionally the corpus-wide
//	aggregate speedup of the current file (-min-aggregate-speedup, so
//	incremental revalidation cannot silently decay toward full
//	re-streaming).
//
// Usage:
//
//	benchdiff -baseline BENCH_validate.json -current BENCH_current.json \
//	          [-kind validate|solve|compile] [-peak-tolerance 0.20] \
//	          [-time-tolerance 0.20] [-min-time-ms 2] [-min-speedup 1.1]
//
// A value more than the tolerance above baseline is a regression. Peak
// heap is allocation-deterministic, so its tolerance can be tight even
// across machines; wall time is noisy on shared CI runners, so its
// tolerance is a flag, and measurements under -min-time-ms are never
// time-gated (a 1 ms phase doubling is noise). Baselines are refreshed by
// committing a new BENCH_validate.json / BENCH_solve.json (see README,
// "Refreshing the benchmark baseline").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors the schema TestWriteValidateBench writes.
type record struct {
	Nodes           int     `json:"nodes"`
	DocBytes        int     `json:"doc_bytes"`
	TreePeakBytes   uint64  `json:"tree_peak_bytes"`
	StreamPeakBytes uint64  `json:"stream_peak_bytes"`
	PeakRatio       float64 `json:"peak_ratio"`
	TreeMs          float64 `json:"tree_ms"`
	StreamMs        float64 `json:"stream_ms"`
}

// solveRecord mirrors the schema TestWriteSolveBench writes.
type solveRecord struct {
	Case          string  `json:"case"`
	RawMs         float64 `json:"raw_ms"`
	PresolveMs    float64 `json:"presolve_ms"`
	Speedup       float64 `json:"speedup"`
	RawNodes      uint64  `json:"raw_nodes"`
	PresolveNodes uint64  `json:"presolve_nodes"`
	VarsFixed     uint64  `json:"vars_fixed"`
}

// compileRecord mirrors the schema TestWriteCompileBench writes.
type compileRecord struct {
	Case    string  `json:"case"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

// editRecord mirrors the schema TestWriteEditBench writes
// (internal/editbench.Result).
type editRecord struct {
	Case         string  `json:"case"`
	Nodes        int     `json:"nodes"`
	Ops          int     `json:"ops"`
	SessionMs    float64 `json:"session_ms"`
	RestreamMs   float64 `json:"restream_ms"`
	Speedup      float64 `json:"speedup"`
	SessionUsPer float64 `json:"session_us_per_op"`
}

// tolerances configures the gate.
type tolerances struct {
	peak       float64 // allowed relative growth of stream_peak_bytes
	time       float64 // allowed relative growth of stream_ms / presolve_ms
	minTimeMs  float64 // time gate floor: below this, wall time is all noise
	minSpeedup float64 // solve kind: minimum raw/presolved speedup per case
	// minAggregate is the solve kind's corpus-wide floor: the ratio of
	// summed raw wall time to summed accelerated wall time over the
	// CURRENT file must stay at or above it. Gating the current file (not
	// the baseline ratio) keeps the invariant meaningful after a baseline
	// refresh: it asserts "the accelerated stack still wins ≥Nx", not
	// "the win never moved".
	minAggregate float64
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_validate.json", "committed baseline")
	currentPath := flag.String("current", "", "freshly measured results")
	kind := flag.String("kind", "validate", `benchmark schema: "validate" or "solve"`)
	peakTol := flag.Float64("peak-tolerance", 0.20, "allowed relative stream peak-heap growth")
	timeTol := flag.Float64("time-tolerance", 0.20, "allowed relative wall-time growth")
	minTimeMs := flag.Float64("min-time-ms", 2, "skip the time gate below this many baseline ms")
	minSpeedup := flag.Float64("min-speedup", 1.1, "solve kind: minimum presolve speedup per case")
	minAggregate := flag.Float64("min-aggregate-speedup", 0, "solve kind: minimum sum(raw_ms)/sum(presolve_ms) over the current file (0 = no gate)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: missing -current")
		os.Exit(2)
	}
	tol := tolerances{peak: *peakTol, time: *timeTol, minTimeMs: *minTimeMs, minSpeedup: *minSpeedup, minAggregate: *minAggregate}
	var report, regressions []string
	switch *kind {
	case "validate":
		base, cur, err := loadBoth[record](*baselinePath, *currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		report, regressions = compare(base, cur, tol)
	case "solve":
		base, cur, err := loadBoth[solveRecord](*baselinePath, *currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		report, regressions = compareSolve(base, cur, tol)
	case "compile":
		base, cur, err := loadBoth[compileRecord](*baselinePath, *currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		report, regressions = compareCompile(base, cur, tol)
	case "edit":
		base, cur, err := loadBoth[editRecord](*baselinePath, *currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		report, regressions = compareEdit(base, cur, tol)
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}

func load[T any](path string) ([]T, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []T
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}
	return recs, nil
}

func loadBoth[T any](basePath, curPath string) (base, cur []T, err error) {
	if base, err = load[T](basePath); err != nil {
		return nil, nil, err
	}
	if cur, err = load[T](curPath); err != nil {
		return nil, nil, err
	}
	return base, cur, nil
}

// compare matches current records to baseline records by node count and
// applies the gates. It returns human-readable comparison lines and the
// regression list (empty = pass). Node counts present in only one file are
// reported but never gate, so widening or narrowing the benchmark matrix
// does not fail the job by itself.
func compare(base, cur []record, tol tolerances) (report, regressions []string) {
	byNodes := make(map[int]record, len(base))
	for _, b := range base {
		byNodes[b.Nodes] = b
	}
	for _, c := range cur {
		b, ok := byNodes[c.Nodes]
		if !ok {
			report = append(report, fmt.Sprintf("nodes=%d: no baseline entry (informational): stream peak %s, %.1f ms",
				c.Nodes, mb(c.StreamPeakBytes), c.StreamMs))
			continue
		}
		delete(byNodes, c.Nodes)
		peakGrowth := growth(float64(b.StreamPeakBytes), float64(c.StreamPeakBytes))
		timeGrowth := growth(b.StreamMs, c.StreamMs)
		report = append(report, fmt.Sprintf(
			"nodes=%d: stream peak %s → %s (%+.1f%%, limit +%.0f%%), stream time %.1f ms → %.1f ms (%+.1f%%, limit +%.0f%%)",
			c.Nodes, mb(b.StreamPeakBytes), mb(c.StreamPeakBytes), 100*peakGrowth, 100*tol.peak,
			b.StreamMs, c.StreamMs, 100*timeGrowth, 100*tol.time))
		if peakGrowth > tol.peak {
			regressions = append(regressions, fmt.Sprintf(
				"nodes=%d: stream peak heap grew %.1f%% (%s → %s), tolerance %.0f%%",
				c.Nodes, 100*peakGrowth, mb(b.StreamPeakBytes), mb(c.StreamPeakBytes), 100*tol.peak))
		}
		if b.StreamMs >= tol.minTimeMs && timeGrowth > tol.time {
			regressions = append(regressions, fmt.Sprintf(
				"nodes=%d: stream time grew %.1f%% (%.1f ms → %.1f ms), tolerance %.0f%%",
				c.Nodes, 100*timeGrowth, b.StreamMs, c.StreamMs, 100*tol.time))
		}
	}
	for nodes := range byNodes {
		report = append(report, fmt.Sprintf("nodes=%d: present in baseline only (informational)", nodes))
	}
	return report, regressions
}

// compareSolve matches current solver records to baseline records by case
// name. Two gates per case: the presolved solver's wall time must not grow
// past the time tolerance (with the same noise floor as the validate
// kind), and its speedup over the raw solver must stay above -min-speedup —
// the presolve layer exists to win wall time, so a case where it decays to
// break-even is a regression even if absolute times look fine. Cases
// present in only one file are reported but never gate.
func compareSolve(base, cur []solveRecord, tol tolerances) (report, regressions []string) {
	byCase := make(map[string]solveRecord, len(base))
	for _, b := range base {
		byCase[b.Case] = b
	}
	for _, c := range cur {
		b, ok := byCase[c.Case]
		if !ok {
			report = append(report, fmt.Sprintf("case %s: no baseline entry (informational): presolved %.1f ms, speedup %.2fx",
				c.Case, c.PresolveMs, c.Speedup))
			continue
		}
		delete(byCase, c.Case)
		timeGrowth := growth(b.PresolveMs, c.PresolveMs)
		report = append(report, fmt.Sprintf(
			"case %s: presolved %.1f ms → %.1f ms (%+.1f%%, limit +%.0f%%), speedup %.2fx → %.2fx (floor %.2fx)",
			c.Case, b.PresolveMs, c.PresolveMs, 100*timeGrowth, 100*tol.time, b.Speedup, c.Speedup, tol.minSpeedup))
		if b.PresolveMs >= tol.minTimeMs && timeGrowth > tol.time {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: presolved solve time grew %.1f%% (%.1f ms → %.1f ms), tolerance %.0f%%",
				c.Case, 100*timeGrowth, b.PresolveMs, c.PresolveMs, 100*tol.time))
		}
		if c.RawMs >= tol.minTimeMs && c.Speedup < tol.minSpeedup {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: presolve speedup %.2fx under the %.2fx floor (raw %.1f ms, presolved %.1f ms)",
				c.Case, c.Speedup, tol.minSpeedup, c.RawMs, c.PresolveMs))
		}
	}
	for name := range byCase {
		report = append(report, fmt.Sprintf("case %s: present in baseline only (informational)", name))
	}
	if tol.minAggregate > 0 {
		var rawSum, preSum float64
		for _, c := range cur {
			rawSum += c.RawMs
			preSum += c.PresolveMs
		}
		agg := 0.0
		if preSum > 0 {
			agg = rawSum / preSum
		}
		report = append(report, fmt.Sprintf(
			"aggregate: raw %.1f ms / accelerated %.1f ms = %.2fx (floor %.2fx)",
			rawSum, preSum, agg, tol.minAggregate))
		if agg < tol.minAggregate {
			regressions = append(regressions, fmt.Sprintf(
				"aggregate speedup %.2fx under the %.2fx floor (raw %.1f ms, accelerated %.1f ms)",
				agg, tol.minAggregate, rawSum, preSum))
		}
	}
	return report, regressions
}

// compareCompile matches current compile/bind records to baseline records
// by case name. Two gates per case: the warm Bind-plus-check wall time must
// not grow past the time tolerance (with the shared noise floor), and its
// speedup over the cold path must stay above -min-speedup — the split
// exists to amortise the per-DTD work, so a case where Bind decays toward
// the cost of a full compile is a regression even if absolute times look
// fine. Cases present in only one file are reported but never gate.
func compareCompile(base, cur []compileRecord, tol tolerances) (report, regressions []string) {
	byCase := make(map[string]compileRecord, len(base))
	for _, b := range base {
		byCase[b.Case] = b
	}
	for _, c := range cur {
		b, ok := byCase[c.Case]
		if !ok {
			report = append(report, fmt.Sprintf("case %s: no baseline entry (informational): warm %.3f ms, speedup %.1fx",
				c.Case, c.WarmMs, c.Speedup))
			continue
		}
		delete(byCase, c.Case)
		timeGrowth := growth(b.WarmMs, c.WarmMs)
		report = append(report, fmt.Sprintf(
			"case %s: warm %.3f ms → %.3f ms (%+.1f%%, limit +%.0f%%), speedup %.1fx → %.1fx (floor %.2fx)",
			c.Case, b.WarmMs, c.WarmMs, 100*timeGrowth, 100*tol.time, b.Speedup, c.Speedup, tol.minSpeedup))
		if b.WarmMs >= tol.minTimeMs && timeGrowth > tol.time {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: warm bind+check time grew %.1f%% (%.3f ms → %.3f ms), tolerance %.0f%%",
				c.Case, 100*timeGrowth, b.WarmMs, c.WarmMs, 100*tol.time))
		}
		if c.ColdMs >= tol.minTimeMs && c.Speedup < tol.minSpeedup {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: bind speedup %.1fx under the %.2fx floor (cold %.3f ms, warm %.3f ms)",
				c.Case, c.Speedup, tol.minSpeedup, c.ColdMs, c.WarmMs))
		}
	}
	for name := range byCase {
		report = append(report, fmt.Sprintf("case %s: present in baseline only (informational)", name))
	}
	return report, regressions
}

// compareEdit matches current session-edit records to baseline records by
// case name. Two gates per case: the session-side wall time must not grow
// past the time tolerance (with the shared noise floor), and its speedup
// over edit-and-restream must stay above -min-speedup — incremental
// revalidation exists to beat the full pass, so a case where the session
// decays toward re-streaming cost is a regression even if absolute times
// look fine. -min-aggregate-speedup additionally gates the corpus-wide
// ratio of the current file, so the headline O(edit) claim is asserted on
// every run, not only against the committed baseline.
func compareEdit(base, cur []editRecord, tol tolerances) (report, regressions []string) {
	byCase := make(map[string]editRecord, len(base))
	for _, b := range base {
		byCase[b.Case] = b
	}
	for _, c := range cur {
		b, ok := byCase[c.Case]
		if !ok {
			report = append(report, fmt.Sprintf("case %s: no baseline entry (informational): session %.3f ms, speedup %.0fx",
				c.Case, c.SessionMs, c.Speedup))
			continue
		}
		delete(byCase, c.Case)
		timeGrowth := growth(b.SessionMs, c.SessionMs)
		report = append(report, fmt.Sprintf(
			"case %s: session %.3f ms → %.3f ms (%+.1f%%, limit +%.0f%%), speedup %.0fx → %.0fx (floor %.1fx)",
			c.Case, b.SessionMs, c.SessionMs, 100*timeGrowth, 100*tol.time, b.Speedup, c.Speedup, tol.minSpeedup))
		if b.SessionMs >= tol.minTimeMs && timeGrowth > tol.time {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: session edit time grew %.1f%% (%.3f ms → %.3f ms), tolerance %.0f%%",
				c.Case, 100*timeGrowth, b.SessionMs, c.SessionMs, 100*tol.time))
		}
		if c.RestreamMs >= tol.minTimeMs && c.Speedup < tol.minSpeedup {
			regressions = append(regressions, fmt.Sprintf(
				"case %s: session speedup %.1fx under the %.1fx floor (restream %.1f ms, session %.3f ms)",
				c.Case, c.Speedup, tol.minSpeedup, c.RestreamMs, c.SessionMs))
		}
	}
	for name := range byCase {
		report = append(report, fmt.Sprintf("case %s: present in baseline only (informational)", name))
	}
	if tol.minAggregate > 0 {
		var restreamSum, sessionSum float64
		for _, c := range cur {
			restreamSum += c.RestreamMs
			sessionSum += c.SessionMs
		}
		agg := 0.0
		if sessionSum > 0 {
			agg = restreamSum / sessionSum
		}
		report = append(report, fmt.Sprintf(
			"aggregate: restream %.1f ms / session %.1f ms = %.0fx (floor %.1fx)",
			restreamSum, sessionSum, agg, tol.minAggregate))
		if agg < tol.minAggregate {
			regressions = append(regressions, fmt.Sprintf(
				"aggregate session speedup %.1fx under the %.1fx floor (restream %.1f ms, session %.1f ms)",
				agg, tol.minAggregate, restreamSum, sessionSum))
		}
	}
	return report, regressions
}

// growth returns (cur-base)/base; a zero baseline only regresses if the
// current value is non-zero.
func growth(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}

func mb(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}
