package main

import (
	"strings"
	"testing"
)

func rec(nodes int, peak uint64, ms float64) record {
	return record{Nodes: nodes, StreamPeakBytes: peak, StreamMs: ms}
}

var tol = tolerances{peak: 0.20, time: 0.20, minTimeMs: 2}

func TestWithinToleranceIsClean(t *testing.T) {
	base := []record{rec(100_000, 10<<20, 100), rec(1_000_000, 12<<20, 1000)}
	cur := []record{rec(100_000, 11<<20, 115), rec(1_000_000, 12<<20, 990)}
	report, regs := compare(base, cur, tol)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("want 2 report lines, got %v", report)
	}
}

func TestPeakRegressionGates(t *testing.T) {
	base := []record{rec(100_000, 10<<20, 100)}
	cur := []record{rec(100_000, 13<<20, 100)} // +30% peak
	_, regs := compare(base, cur, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "peak heap") {
		t.Fatalf("want one peak regression, got %v", regs)
	}
}

func TestTimeRegressionGates(t *testing.T) {
	base := []record{rec(100_000, 10<<20, 100)}
	cur := []record{rec(100_000, 10<<20, 150)} // +50% time
	_, regs := compare(base, cur, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "stream time") {
		t.Fatalf("want one time regression, got %v", regs)
	}
}

func TestTinyTimesNeverTimeGate(t *testing.T) {
	base := []record{rec(1000, 1<<20, 0.5)}
	cur := []record{rec(1000, 1<<20, 5)} // 10x, but under the 2 ms floor
	if _, regs := compare(base, cur, tol); len(regs) != 0 {
		t.Fatalf("sub-floor time gated: %v", regs)
	}
}

func TestUnmatchedNodeCountsAreInformational(t *testing.T) {
	base := []record{rec(100_000, 10<<20, 100), rec(1_000_000, 12<<20, 1000)}
	cur := []record{rec(100_000, 10<<20, 100), rec(2_000_000, 50<<20, 9000)}
	report, regs := compare(base, cur, tol)
	if len(regs) != 0 {
		t.Fatalf("matrix changes must not gate: %v", regs)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "no baseline entry") || !strings.Contains(joined, "baseline only") {
		t.Fatalf("missing informational lines:\n%s", joined)
	}
}

func TestZeroBaselineRegressesOnGrowth(t *testing.T) {
	base := []record{rec(100_000, 0, 100)}
	cur := []record{rec(100_000, 1<<20, 100)}
	if _, regs := compare(base, cur, tol); len(regs) != 1 {
		t.Fatalf("growth from zero baseline must gate, got %v", regs)
	}
}

func srec(name string, rawMs, preMs float64) solveRecord {
	r := solveRecord{Case: name, RawMs: rawMs, PresolveMs: preMs}
	if preMs > 0 {
		r.Speedup = rawMs / preMs
	}
	return r
}

var solveTol = tolerances{time: 0.20, minTimeMs: 2, minSpeedup: 1.1}

func TestSolveWithinToleranceIsClean(t *testing.T) {
	base := []solveRecord{srec("a", 100, 20), srec("b", 50, 10)}
	cur := []solveRecord{srec("a", 95, 22), srec("b", 55, 11)}
	report, regs := compareSolve(base, cur, solveTol)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("want 2 report lines, got %v", report)
	}
}

func TestSolveTimeRegressionGates(t *testing.T) {
	base := []solveRecord{srec("a", 100, 20)}
	cur := []solveRecord{srec("a", 100, 30)} // +50% presolved time
	_, regs := compareSolve(base, cur, solveTol)
	if len(regs) != 1 || !strings.Contains(regs[0], "solve time") {
		t.Fatalf("want one time regression, got %v", regs)
	}
}

func TestSolveSpeedupFloorGates(t *testing.T) {
	base := []solveRecord{srec("a", 100, 20)}
	cur := []solveRecord{srec("a", 22, 21)} // 1.05x: presolve decayed to break-even
	_, regs := compareSolve(base, cur, solveTol)
	if len(regs) != 1 || !strings.Contains(regs[0], "speedup") {
		t.Fatalf("want one speedup regression, got %v", regs)
	}
}

func TestSolveTinyCasesNeverGate(t *testing.T) {
	base := []solveRecord{srec("a", 1.5, 0.5)}
	cur := []solveRecord{srec("a", 1.0, 1.0)} // both under the 2 ms floor
	if _, regs := compareSolve(base, cur, solveTol); len(regs) != 0 {
		t.Fatalf("sub-floor case gated: %v", regs)
	}
}

func TestSolveUnmatchedCasesAreInformational(t *testing.T) {
	base := []solveRecord{srec("a", 100, 20), srec("old", 50, 10)}
	cur := []solveRecord{srec("a", 100, 20), srec("new", 80, 8)}
	report, regs := compareSolve(base, cur, solveTol)
	if len(regs) != 0 {
		t.Fatalf("corpus changes must not gate: %v", regs)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "no baseline entry") || !strings.Contains(joined, "baseline only") {
		t.Fatalf("missing informational lines:\n%s", joined)
	}
}

func crec(name string, coldMs, warmMs float64) compileRecord {
	r := compileRecord{Case: name, ColdMs: coldMs, WarmMs: warmMs}
	if warmMs > 0 {
		r.Speedup = coldMs / warmMs
	}
	return r
}

var compileTol = tolerances{time: 0.20, minTimeMs: 2, minSpeedup: 2}

func TestCompileWithinToleranceIsClean(t *testing.T) {
	base := []compileRecord{crec("teachers", 12, 0.01), crec("registrar", 2.2, 0.02)}
	cur := []compileRecord{crec("teachers", 13, 0.011), crec("registrar", 2.0, 0.022)}
	report, regs := compareCompile(base, cur, compileTol)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("want 2 report lines, got %v", report)
	}
}

func TestCompileWarmTimeRegressionGates(t *testing.T) {
	base := []compileRecord{crec("a", 100, 4)}
	cur := []compileRecord{crec("a", 100, 6)} // +50% warm time
	_, regs := compareCompile(base, cur, compileTol)
	if len(regs) != 1 || !strings.Contains(regs[0], "bind+check time") {
		t.Fatalf("want one time regression, got %v", regs)
	}
}

func TestCompileSpeedupFloorGates(t *testing.T) {
	base := []compileRecord{crec("a", 100, 4)}
	cur := []compileRecord{crec("a", 100, 60)} // 1.7x: bind decayed toward recompilation
	_, regs := compareCompile(base, cur, compileTol)
	// The warm time also blew the growth gate; the speedup floor must be
	// among the regressions.
	found := false
	for _, r := range regs {
		if strings.Contains(r, "floor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a speedup-floor regression, got %v", regs)
	}
}

func TestCompileTinyColdCasesNeverSpeedupGate(t *testing.T) {
	base := []compileRecord{crec("a", 0.4, 0.1)}
	cur := []compileRecord{crec("a", 0.3, 0.2)} // 1.5x, but cold under the 2 ms floor
	if _, regs := compareCompile(base, cur, compileTol); len(regs) != 0 {
		t.Fatalf("sub-floor case gated: %v", regs)
	}
}

func TestCompileUnmatchedCasesAreInformational(t *testing.T) {
	base := []compileRecord{crec("a", 100, 2), crec("old", 50, 1)}
	cur := []compileRecord{crec("a", 100, 2), crec("new", 80, 1)}
	report, regs := compareCompile(base, cur, compileTol)
	if len(regs) != 0 {
		t.Fatalf("corpus changes must not gate: %v", regs)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "no baseline entry") || !strings.Contains(joined, "baseline only") {
		t.Fatalf("missing informational lines:\n%s", joined)
	}
}

func TestSolveAggregateFloorGates(t *testing.T) {
	tol := solveTol
	tol.minAggregate = 2.0
	base := []solveRecord{srec("a", 100, 20), srec("b", 50, 10)}

	// Aggregate 150/30 = 5x: clean, with an aggregate report line.
	cur := []solveRecord{srec("a", 100, 20), srec("b", 50, 10)}
	report, regs := compareSolve(base, cur, tol)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if joined := strings.Join(report, "\n"); !strings.Contains(joined, "aggregate") {
		t.Fatalf("missing aggregate report line:\n%s", joined)
	}

	// Aggregate 150/90 ≈ 1.67x: under the 2x floor even though each case
	// clears the 1.1x per-case floor and its own time tolerance is off the
	// hook via fresh baselines.
	decayed := []solveRecord{srec("a", 100, 60), srec("b", 50, 30)}
	_, regs = compareSolve(decayed, decayed, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "aggregate speedup") {
		t.Fatalf("want one aggregate regression, got %v", regs)
	}

	// minAggregate 0 disables the gate entirely.
	if _, regs := compareSolve(decayed, decayed, solveTol); len(regs) != 0 {
		t.Fatalf("aggregate gate fired while disabled: %v", regs)
	}
}
