// Command xicgen generates workloads for xic: random DTDs, random unary
// constraint sets over a DTD, and random 0/1-LIP instances encoded through
// the Theorem 4.7 reduction. All output is deterministic in -seed.
//
// Usage:
//
//	xicgen dtd  [-seed N] [-types N] [-depth N] [-attrs N] [-recursive]
//	xicgen constraints -dtd spec.dtd [-seed N] [-keys N] [-fks N] [-ics N] [-negkeys N] [-negics N]
//	xicgen lip  [-seed N] [-rows N] [-cols N] [-density PCT] [-as-spec]
//	xicgen doc  -dtd spec.dtd [-seed N] [-nodes N] [-values N]
//
// doc streams a document conforming to the DTD with approximately -nodes
// element nodes (millions are fine: generation is O(depth) memory), the
// workload for `xic validate -stream`. -values 0 makes attribute values
// globally unique, so keys hold; -values N draws them from a pool of N,
// making collisions likely.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"xic"
	"xic/internal/constraint"
	"xic/internal/randgen"
	"xic/internal/reduction"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: xicgen dtd|constraints|lip|doc [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dtd":
		err = genDTD(os.Args[2:])
	case "constraints":
		err = genConstraints(os.Args[2:])
	case "lip":
		err = genLIP(os.Args[2:])
	case "doc":
		err = genDoc(os.Args[2:])
	default:
		err = fmt.Errorf("unknown kind %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xicgen:", err)
		os.Exit(2)
	}
}

func genDTD(args []string) error {
	fs := flag.NewFlagSet("dtd", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	types := fs.Int("types", 5, "number of element types")
	depth := fs.Int("depth", 2, "content-model nesting depth")
	attrs := fs.Int("attrs", 1, "attributes per element type")
	recursive := fs.Bool("recursive", false, "allow recursive element types")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d := randgen.RandDTD(rand.New(rand.NewSource(*seed)), randgen.DTDSpec{
		Types: *types, Depth: *depth, AttrsPer: *attrs, Recursive: *recursive,
	})
	fmt.Print(d.String())
	return nil
}

func genConstraints(args []string) error {
	fs := flag.NewFlagSet("constraints", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	dtdPath := fs.String("dtd", "", "DTD file to draw attributes from")
	keys := fs.Int("keys", 2, "number of unary keys")
	fks := fs.Int("fks", 1, "number of unary foreign keys")
	ics := fs.Int("ics", 0, "number of unary inclusion constraints")
	negKeys := fs.Int("negkeys", 0, "number of negated keys")
	negICs := fs.Int("negics", 0, "number of negated inclusions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("missing -dtd")
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	d, err := xic.ParseDTD(string(data))
	if err != nil {
		return err
	}
	set := randgen.RandUnarySet(rand.New(rand.NewSource(*seed)), d, randgen.SetSpec{
		Keys: *keys, ForeignKeys: *fks, Inclusions: *ics,
		NegKeys: *negKeys, NegInclusions: *negICs,
	})
	fmt.Print(constraint.FormatSet(set))
	return nil
}

func genDoc(args []string) error {
	fs := flag.NewFlagSet("doc", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	dtdPath := fs.String("dtd", "", "DTD file to generate against")
	nodes := fs.Int("nodes", 1000, "approximate number of element nodes (millions are fine)")
	values := fs.Int("values", 0, "attribute value pool size (0 = globally unique values)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("missing -dtd")
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	d, err := xic.ParseDTD(string(data))
	if err != nil {
		return err
	}
	n, err := randgen.WriteDocument(os.Stdout, d, rand.New(rand.NewSource(*seed)), randgen.DocSpec{
		TargetNodes: *nodes, ValuePool: *values,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xicgen: wrote %d element nodes\n", n)
	return nil
}

func genLIP(args []string) error {
	fs := flag.NewFlagSet("lip", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	rows := fs.Int("rows", 3, "matrix rows")
	cols := fs.Int("cols", 4, "matrix columns")
	density := fs.Int("density", 50, "percentage of 1-entries")
	asSpec := fs.Bool("as-spec", false, "emit the Theorem 4.7 DTD+constraints instead of the matrix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := randgen.RandLIP01(rand.New(rand.NewSource(*seed)), *rows, *cols, *density)
	if !*asSpec {
		for _, row := range a {
			for j, v := range row {
				if j > 0 {
					fmt.Print(" ")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
		return nil
	}
	spec, err := reduction.LIPToSpec(a)
	if err != nil {
		return err
	}
	fmt.Println("<!-- DTD -->")
	fmt.Print(spec.DTD.String())
	fmt.Println("<!-- constraints -->")
	fmt.Print(constraint.FormatSet(spec.Sigma))
	return nil
}
