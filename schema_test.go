package xic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSchemaBindFlow covers the two-stage happy path: compile the DTD once,
// bind several constraint sets, and get the same verdicts as one-shot
// Compile.
func TestSchemaBindFlow(t *testing.T) {
	schema, err := CompileDTDString(teachersDTD)
	if err != nil {
		t.Fatalf("CompileDTDString: %v", err)
	}
	if !schema.ConsistentDTD() {
		t.Fatal("teachers DTD has valid trees")
	}
	if len(schema.Fingerprint()) != 64 {
		t.Errorf("schema fingerprint %q is not hex SHA-256", schema.Fingerprint())
	}

	ctx := context.Background()
	sigma, err := schema.BindStrings(sigma1)
	if err != nil {
		t.Fatalf("BindStrings: %v", err)
	}
	if sigma.Schema() != schema {
		t.Error("bound Spec does not report its Schema")
	}
	res, err := sigma.WithOptions(Options{SkipWitness: true}).Consistent(ctx)
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("Σ1 bound via Schema must stay inconsistent")
	}

	keys, err := schema.Bind(UnaryKey("teacher", "name"))
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	res, err = keys.Consistent(ctx)
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if !res.Consistent || res.Witness == nil {
		t.Error("keys-only set bound via Schema must be consistent with witness")
	}

	// Bind errors carry the constraints stage; the schema stays usable.
	_, err = schema.Bind(UnaryKey("teacher", "ghost"))
	var se *SpecError
	if !errors.As(err, &se) || se.Stage != "constraints" {
		t.Errorf("want SpecError{constraints}, got %v", err)
	}
	if _, err := schema.Bind(); err != nil {
		t.Errorf("schema unusable after a failed bind: %v", err)
	}

	// The two formattings of one DTD share the canonical fingerprint but
	// not the source fingerprint — the documented split.
	reformatted, err := CompileDTDString(teachersDTD + "\n\n")
	if err != nil {
		t.Fatalf("CompileDTDString: %v", err)
	}
	if reformatted.Fingerprint() != schema.Fingerprint() {
		t.Error("canonical schema fingerprints differ across formattings")
	}
	if FingerprintDTD(teachersDTD) == FingerprintDTD(teachersDTD+"\n\n") {
		t.Error("source fingerprints must be byte-exact")
	}
}

// TestSchemaBindConcurrent binds identical and distinct constraint sets
// from many goroutines against one Schema; run under -race this is the
// concurrency contract of Schema.Bind (satellite of the two-stage split).
// Singleflight dedup of identical binds is a registry property and is
// asserted in internal/registry's tests; here every Bind returns an
// independent, working Spec.
func TestSchemaBindConcurrent(t *testing.T) {
	schema, err := CompileDTDString(teachersDTD)
	if err != nil {
		t.Fatalf("CompileDTDString: %v", err)
	}
	ctx := context.Background()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Identical set: the paper's Σ1, inconsistent.
				spec, err := schema.BindStrings(sigma1)
				if err != nil {
					errs <- err
					return
				}
				res, err := spec.WithOptions(Options{SkipWitness: true}).Consistent(ctx)
				if err != nil {
					errs <- err
					return
				}
				if res.Consistent {
					errs <- errors.New("Σ1 must stay inconsistent under concurrent Bind")
				}
				return
			}
			// Distinct singleton sets per goroutine.
			var c Constraint = UnaryKey("teacher", "name")
			if g%4 == 1 {
				c = UnaryKey("subject", "taught_by")
			}
			spec, err := schema.Bind(c)
			if err != nil {
				errs <- err
				return
			}
			res, err := spec.WithOptions(Options{SkipWitness: true}).Consistent(ctx)
			if err != nil {
				errs <- err
				return
			}
			if !res.Consistent {
				errs <- fmt.Errorf("keys-only set %v must be consistent", c)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSpecStatsSharingAudit is the WithOptions/WithParallelism copy audit:
// derived views deliberately share their parent's solver counters (they
// are views of one engine binding, recorded via atomics, so concurrent
// parent/child use is race-free and no update is lost), while separately
// bound Specs — even of the same Schema — keep independent counters. Run
// under -race this exercises parent and child concurrently.
func TestSpecStatsSharingAudit(t *testing.T) {
	schema, err := CompileDTDString(teachersDTD)
	if err != nil {
		t.Fatalf("CompileDTDString: %v", err)
	}
	parent, err := schema.BindStrings(sigma1)
	if err != nil {
		t.Fatalf("BindStrings: %v", err)
	}
	child := parent.WithOptions(Options{SkipWitness: true})
	pooled := parent.WithParallelism(2)

	ctx := context.Background()
	const rounds = 4
	var wg sync.WaitGroup
	for _, view := range []*Spec{parent, child, pooled} {
		wg.Add(1)
		go func(s *Spec) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.WithOptions(Options{SkipWitness: true}).Consistent(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(view)
	}
	wg.Wait()

	// Every view's checks landed in the shared counters, exactly once each:
	// an unsynchronised (non-atomic) implementation would lose updates here
	// and an unshared one would report rounds instead of 3×rounds.
	want := uint64(3 * rounds)
	for name, view := range map[string]*Spec{"parent": parent, "child": child, "pooled": pooled} {
		if got := view.SolveStats().Solves; got != want {
			t.Errorf("%s view sees %d solves, want %d (shared, lossless counters)", name, got, want)
		}
	}

	// A sibling binding of the same schema keeps its own counters: binding
	// state is per-Spec even though the compiled engine is shared.
	sibling, err := schema.BindStrings(sigma1)
	if err != nil {
		t.Fatalf("BindStrings: %v", err)
	}
	if got := sibling.SolveStats().Solves; got != 0 {
		t.Errorf("fresh sibling binding already has %d solves; engine stats leaked across Binds", got)
	}
}

// TestImplicationMemo: repeated implication queries against a stable
// schema are answered from the memoized cache — across Specs binding the
// same set — without poisoning results across options or constraint sets.
func TestImplicationMemo(t *testing.T) {
	schema, err := CompileDTDString(`
<!ELEMENT catalog (vendor*, offer*)>
<!ELEMENT vendor EMPTY>
<!ELEMENT offer EMPTY>
<!ATTLIST vendor vid CDATA #REQUIRED>
<!ATTLIST offer vid CDATA #REQUIRED>`)
	if err != nil {
		t.Fatalf("CompileDTDString: %v", err)
	}
	spec, err := schema.BindStrings("vendor.vid -> vendor\noffer.vid => vendor.vid")
	if err != nil {
		t.Fatalf("BindStrings: %v", err)
	}
	ctx := context.Background()
	phi := UnaryInclusion("offer", "vid", "vendor", "vid")

	imp, err := spec.Implies(ctx, phi)
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if !imp.Implied {
		t.Fatal("restated Σ member must be implied")
	}
	st := schema.ImplCacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first query: %+v, want 1 miss, 0 hits, 1 entry", st)
	}

	// Second query on the same Spec: pure lookup.
	if imp, err = spec.Implies(ctx, phi); err != nil || !imp.Implied {
		t.Fatalf("second Implies: %v %v", imp, err)
	}
	if st = schema.ImplCacheStats(); st.Hits != 1 {
		t.Fatalf("after second query: %+v, want a hit", st)
	}

	// A different Spec binding the identical set shares the entries.
	twin, err := schema.BindStrings("vendor.vid -> vendor\noffer.vid => vendor.vid")
	if err != nil {
		t.Fatalf("BindStrings: %v", err)
	}
	if imp, err = twin.Implies(ctx, phi); err != nil || !imp.Implied {
		t.Fatalf("twin Implies: %v %v", imp, err)
	}
	if st = schema.ImplCacheStats(); st.Hits != 2 {
		t.Fatalf("twin binding missed the memo: %+v", st)
	}

	// Unimplied queries memoize their counterexample as a private copy:
	// mutating what one caller received must not corrupt later answers.
	notImplied := UnaryKey("offer", "vid")
	first, err := spec.Implies(ctx, notImplied)
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if first.Implied || first.Counterexample == nil {
		t.Fatalf("offer.vid -> offer must fail with a counterexample: %+v", first)
	}
	first.Counterexample.Root.SetAttr("poisoned", "yes")
	second, err := spec.Implies(ctx, notImplied)
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if second.Counterexample == nil {
		t.Fatal("memoized answer lost its counterexample")
	}
	if _, ok := second.Counterexample.Root.Attr("poisoned"); ok {
		t.Error("caller mutation reached the memoized counterexample")
	}
	if first.Counterexample == second.Counterexample {
		t.Error("memo handed out a shared counterexample tree")
	}

	// Different options (witness handling) key separate entries.
	skipping := spec.WithOptions(Options{SkipWitness: true})
	skipped, err := skipping.Implies(ctx, notImplied)
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if skipped.Counterexample != nil {
		t.Error("SkipWitness view received a memoized counterexample from the witnessed entry")
	}

	// A different constraint set does not alias entries: under the empty
	// Σ the inclusion is no longer implied.
	empty, err := schema.Bind()
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if imp, err = empty.Implies(ctx, phi); err != nil {
		t.Fatalf("Implies: %v", err)
	} else if imp.Implied {
		t.Error("empty Σ wrongly implies the inclusion (memo aliased across constraint sets)")
	}
}
