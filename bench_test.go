package xic

// Benchmark harness for every artifact in the paper's evaluation: the four
// illustrative figures and every cell of the Figure 5 complexity table.
// The paper (a 2001 theory paper) reports no wall-clock numbers; these
// benchmarks validate the *shape* of each result — which procedures are
// linear, which pay NP/coNP prices and where, and that all decision
// outcomes match the paper's worked examples. EXPERIMENTS.md records a
// captured run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"xic/internal/cardinality"
	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/dtd"
	"xic/internal/randgen"
	"xic/internal/reduction"
	"xic/internal/relational"
	"xic/internal/solvebench"
	"xic/internal/xmltree"
)

// encodeAll builds Ψ(D,Σ) for a simplified DTD and a unary constraint set.
func encodeAll(simp *dtd.Simplified, set []constraint.Constraint) (*cardinality.Encoding, error) {
	enc, err := cardinality.EncodeDTD(simp)
	if err != nil {
		return nil, err
	}
	if _, err := enc.AddFull(set); err != nil {
		return nil, err
	}
	return enc, nil
}

// ---- Figures 1–4 -----------------------------------------------------

// BenchmarkFigure1Tree builds the Figure 1 document and validates it
// against D1 and Σ1 (conforms; violates the subject key).
func BenchmarkFigure1Tree(b *testing.B) {
	d := dtd.Teachers()
	sigma := constraint.Sigma1()
	v := xmltree.NewValidator(d)
	for i := 0; i < b.N; i++ {
		tr := xmltree.Figure1()
		if err := v.Validate(tr); err != nil {
			b.Fatal(err)
		}
		if ok, _ := constraint.SatisfiedAll(tr, sigma); ok {
			b.Fatal("Figure 1 should violate Σ1")
		}
	}
}

// BenchmarkFigure2Reduction runs the Theorem 3.1 reduction and realises the
// Figure 2 document from a relational instance.
func BenchmarkFigure2Reduction(b *testing.B) {
	s := relational.NewSchema()
	s.AddRelation("R", "a", "b", "c")
	theta := []relational.Dependency{relational.Key{Rel: "R", Attrs: []string{"c"}}}
	phi := relational.Key{Rel: "R", Attrs: []string{"a"}}
	inst := relational.NewInstance(s)
	for i := 0; i < 10; i++ {
		_ = inst.Insert("R", relational.Tuple{"a": "x", "b": fmt.Sprint(i), "c": fmt.Sprint(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := reduction.RelationalToXML(s, theta, phi)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := spec.TreeFromInstance(inst)
		if err != nil {
			b.Fatal(err)
		}
		if !xmltree.Conforms(tree, spec.DTD) {
			b.Fatal("Figure 2 tree does not conform")
		}
	}
}

// BenchmarkFigure3Reduction runs the Lemma 3.3 reduction (consistency →
// implication) and decides the resulting implication instance.
func BenchmarkFigure3Reduction(b *testing.B) {
	d := dtd.Teachers()
	sigma := constraint.MustParse("teacher.name -> teacher")
	for i := 0; i < b.N; i++ {
		inst, err := reduction.ConsistencyToKeyImplication(d, sigma)
		if err != nil {
			b.Fatal(err)
		}
		imp, err := core.Implies(inst.DTD, inst.Sigma, inst.Phi, &core.Options{SkipWitness: true})
		if err != nil {
			b.Fatal(err)
		}
		if imp.Implied {
			b.Fatal("consistent Σ must make the reduced implication fail")
		}
	}
}

// BenchmarkFigure4Reduction runs the Theorem 4.7 reduction (0/1-LIP →
// consistency) end to end, extracting and checking the solution.
func BenchmarkFigure4Reduction(b *testing.B) {
	a := [][]int{{1, 0, 1}, {0, 1, 1}}
	for i := 0; i < b.N; i++ {
		spec, err := reduction.LIPToSpec(a)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Consistent(spec.DTD, spec.Sigma, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent || !spec.Eval(spec.Solution(res.Witness)) {
			b.Fatal("solvable instance mishandled")
		}
	}
}

// ---- Figure 5, row "consistency" -------------------------------------

// BenchmarkDTDValidity is the linear-time "is there a valid tree at all"
// check underlying the keys-only column (Theorem 3.5(1)).
func BenchmarkDTDValidity(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		d := randgen.ChainDTD(n)
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.ConsistentDTD(d) {
					b.Fatal("chain DTD must have trees")
				}
			}
		})
	}
}

// BenchmarkKeysConsistency is the linear-time cell: multi-attribute keys
// only (Theorem 3.5(2)).
func BenchmarkKeysConsistency(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		d := randgen.ChainDTD(n)
		keys := randgen.KeySetOver(d)
		opt := &core.Options{SkipWitness: true}
		b.Run(fmt.Sprintf("keys-%d", len(keys)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Consistent(d, keys, opt)
				if err != nil || !res.Consistent {
					b.Fatalf("keys over chain: %v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkKeysImplication is the linear-time implication cell
// (Theorem 3.5(3), Lemma 3.7).
func BenchmarkKeysImplication(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		d := randgen.ChainDTD(n)
		keys := randgen.KeySetOver(d)
		phi := constraint.Key{Type: "c1", Attrs: []string{"k"}}
		b.Run(fmt.Sprintf("keys-%d", len(keys)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ImpliesKey(d, keys, phi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnaryConsistency is the NP-complete cell: unary keys and
// foreign keys (Theorem 4.7), on the paper's own inconsistent teacher
// pattern replicated k times and on its consistent keys-only variant.
func BenchmarkUnaryConsistency(b *testing.B) {
	opt := &core.Options{SkipWitness: true}
	for _, blocks := range []int{1, 2, 4} {
		d := randgen.TeacherFamily(blocks)
		bad := randgen.TeacherFamilyConstraints(blocks, true)
		good := randgen.TeacherFamilyConstraints(blocks, false)
		b.Run(fmt.Sprintf("inconsistent-%dblocks", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Consistent(d, bad, opt)
				if err != nil || res.Consistent {
					b.Fatalf("Σ1-family must be inconsistent: %v %v", res, err)
				}
			}
		})
		b.Run(fmt.Sprintf("consistent-%dblocks", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Consistent(d, good, opt)
				if err != nil || !res.Consistent {
					b.Fatalf("keys-only family must be consistent: %v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkPrimaryUnaryConsistency is the primary-key-restricted cell
// (Corollary 4.8) — the teacher family already obeys the restriction, so
// this measures the same NP procedure under the restriction's guard.
func BenchmarkPrimaryUnaryConsistency(b *testing.B) {
	d := randgen.TeacherFamily(2)
	set := randgen.TeacherFamilyConstraints(2, true)
	if err := constraint.CheckPrimaryKeyRestriction(set); err != nil {
		b.Fatal(err)
	}
	opt := &core.Options{SkipWitness: true}
	for i := 0; i < b.N; i++ {
		res, err := core.Consistent(d, set, opt)
		if err != nil || res.Consistent {
			b.Fatalf("restricted Σ1-family must stay inconsistent: %v %v", res, err)
		}
	}
}

// BenchmarkFullClassConsistency is the Theorem 5.1 cell: unary keys,
// inclusion constraints and their negations (intersection-cell encoding).
func BenchmarkFullClassConsistency(b *testing.B) {
	d := randgen.WideDTD(4)
	set := constraint.MustParse(`
s0.id -> s0
s0.id <= s1.id
not s1.id <= s0.id
not s2.id -> s2
`)
	opt := &core.Options{SkipWitness: true}
	for i := 0; i < b.N; i++ {
		res, err := core.Consistent(d, set, opt)
		if err != nil || !res.Consistent {
			b.Fatalf("negation set should be consistent: %v %v", res, err)
		}
	}
}

// ---- Figure 5, row "implication" -------------------------------------

// BenchmarkUnaryImplication is the coNP-complete cell (Theorems 4.10/5.4):
// refuting Σ ∧ ¬φ through the encoding.
func BenchmarkUnaryImplication(b *testing.B) {
	for _, blocks := range []int{1, 2} {
		d := randgen.TeacherFamily(blocks)
		sigma := append(randgen.TeacherFamilyConstraints(blocks, false),
			constraint.UnaryForeignKey("teacher_0", "name", "subject_0", "taught_by"))
		phi := constraint.UnaryInclusion("subject_0", "taught_by", "teacher_0", "name")
		opt := &core.Options{SkipWitness: true}
		b.Run(fmt.Sprintf("%dblocks", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				imp, err := core.Implies(d, sigma, phi, opt)
				if err != nil || imp.Implied {
					b.Fatalf("inclusion should not be implied: %v %v", imp, err)
				}
			}
		})
	}
}

// ---- Figure 5, column "fixed DTD" ------------------------------------

// BenchmarkFixedDTDConsistency is the PTIME cell of Corollary 4.11: a
// fixed DTD with growing constraint sets.
func BenchmarkFixedDTDConsistency(b *testing.B) {
	d := randgen.WideDTD(4)
	checker, err := core.NewChecker(d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	opt := &core.Options{SkipWitness: true}
	for _, k := range []int{4, 16, 64} {
		set := randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: k / 2, Inclusions: k / 2})
		b.Run(fmt.Sprintf("sigma-%d", len(set)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := checker.Consistent(set, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFixedDTDImplication is the PTIME implication cell
// (Corollary 5.5).
func BenchmarkFixedDTDImplication(b *testing.B) {
	d := randgen.WideDTD(4)
	checker, err := core.NewChecker(d)
	if err != nil {
		b.Fatal(err)
	}
	sigma := constraint.MustParse("s0.id <= s1.id\ns1.id <= s2.id")
	phi := constraint.UnaryInclusion("s0", "id", "s2", "id")
	opt := &core.Options{SkipWitness: true}
	for i := 0; i < b.N; i++ {
		imp, err := checker.Implies(sigma, phi, opt)
		if err != nil || !imp.Implied {
			b.Fatalf("transitive inclusion must be implied: %v %v", imp, err)
		}
	}
}

// ---- Figure 5, undecidable cells (construction only) ------------------

// BenchmarkUndecidableConsistencyReduction measures constructing the
// Theorem 3.1 gadget — the undecidable cell has no decision procedure to
// measure, so the executable artifact is the reduction itself.
func BenchmarkUndecidableConsistencyReduction(b *testing.B) {
	s := relational.NewSchema()
	var theta []relational.Dependency
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("R%d", i)
		s.AddRelation(name, "a", "b", "c")
		theta = append(theta, relational.Key{Rel: name, Attrs: []string{"a"}})
	}
	phi := relational.Key{Rel: "R0", Attrs: []string{"b"}}
	for i := 0; i < b.N; i++ {
		if _, err := reduction.RelationalToXML(s, theta, phi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUndecidableImplicationReduction measures the Lemma 3.3 gadget.
func BenchmarkUndecidableImplicationReduction(b *testing.B) {
	d := randgen.TeacherFamily(4)
	sigma := randgen.TeacherFamilyConstraints(4, true)
	for i := 0; i < b.N; i++ {
		if _, err := reduction.ConsistencyToKeyImplication(d, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Supporting measurements ------------------------------------------

// BenchmarkEncodingCost measures building Ψ(D,Σ) alone — the paper bounds
// it by O(s²·log s) (Theorem 4.1).
func BenchmarkEncodingCost(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		d := randgen.ChainDTD(n)
		set := randgen.KeySetOver(d)
		b.Run(fmt.Sprintf("size-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simp := dtd.Simplify(d)
				enc, err := encodeAll(simp, set)
				if err != nil {
					b.Fatal(err)
				}
				_ = enc
			}
		})
	}
}

// BenchmarkWitnessConstruction measures the constructive half: solution →
// verified document (Lemmas 4.4/4.5 plus de-simplification).
func BenchmarkWitnessConstruction(b *testing.B) {
	d := randgen.TeacherFamily(2)
	set := randgen.TeacherFamilyConstraints(2, false)
	for i := 0; i < b.N; i++ {
		res, err := core.Consistent(d, set, nil)
		if err != nil || res.Witness == nil {
			b.Fatalf("expected witness: %v %v", res, err)
		}
	}
}

// ---- The compiled Spec engine ------------------------------------------

// BenchmarkSpecCompile measures the one-off per-DTD cost the Spec API
// front-loads: validation, simplification and the encoding template.
func BenchmarkSpecCompile(b *testing.B) {
	d := randgen.WideDTD(4)
	set := constraint.MustParse("s0.id -> s0\ns0.id <= s1.id")
	for i := 0; i < b.N; i++ {
		if _, err := Compile(d, set...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecServe measures the amortised serving path of Corollary
// 4.11: one compiled Spec answering many consistency requests, the
// workload the API is designed around.
func BenchmarkSpecServe(b *testing.B) {
	d := randgen.WideDTD(4)
	spec, err := Compile(d)
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.WithOptions(Options{SkipWitness: true})
	rng := rand.New(rand.NewSource(3))
	sets := make([][]Constraint, 64)
	for i := range sets {
		sets[i] = randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: 2, ForeignKeys: 1, Inclusions: 1})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.ConsistentWith(ctx, sets[i%len(sets)]...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecConsistentAll measures batch serving on the bounded worker
// pool against the same workload checked one at a time.
func BenchmarkSpecConsistentAll(b *testing.B) {
	d := randgen.WideDTD(4)
	spec, err := Compile(d)
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.WithOptions(Options{SkipWitness: true})
	rng := rand.New(rand.NewSource(3))
	sets := make([][]Constraint, 64)
	for i := range sets {
		sets[i] = randgen.RandUnarySet(rng, d, randgen.SetSpec{Keys: 2, ForeignKeys: 1, Inclusions: 1})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ans := range spec.ConsistentAll(ctx, sets) {
			if ans.Err != nil {
				b.Fatal(ans.Err)
			}
		}
	}
}

// BenchmarkLIPGadgetConsistency drives random Theorem 4.7 gadgets through
// the full NP pipeline.
func BenchmarkLIPGadgetConsistency(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randgen.RandLIP01(rng, 3, 4, 50)
	spec, err := reduction.LIPToSpec(a)
	if err != nil {
		b.Fatal(err)
	}
	opt := &core.Options{SkipWitness: true}
	for i := 0; i < b.N; i++ {
		if _, err := core.Consistent(spec.DTD, spec.Sigma, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelationalVsXMLImplication contrasts the relational world —
// where unary key+inclusion implication is linear (Cosmadakis et al.) —
// with the XML world, where the same question is coNP-complete because the
// DTD participates. Here the DTD's cardinality structure flips the answer:
// structurally at most one 'a' exists, so a.x → a is implied by nothing.
func BenchmarkRelationalVsXMLImplication(b *testing.B) {
	d := dtd.MustParse(`
<!ELEMENT r (a?, b*)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
`)
	phi := constraint.UnaryKey("a", "x")
	opt := &core.Options{SkipWitness: true}
	for i := 0; i < b.N; i++ {
		imp, err := core.Implies(d, nil, phi, opt)
		if err != nil || !imp.Implied {
			b.Fatalf("structural implication must hold: %v %v", imp, err)
		}
	}
}

// ---- Streaming validation (the large-document serving workload) --------

// streamDocCache holds generated benchmark documents by node count, so the
// generator runs once per size per test binary.
var streamDocCache = map[int][]byte{}

func streamDoc(tb testing.TB, nodes int) []byte {
	if doc, ok := streamDocCache[nodes]; ok {
		return doc
	}
	doc := genDoc(tb, streamBenchDTD, nodes, 0, 42)
	streamDocCache[nodes] = doc
	return doc
}

func streamBenchSizes() []int {
	if testing.Short() {
		return []int{100_000}
	}
	return []int{100_000, 1_000_000}
}

// BenchmarkValidateTree is the materializing baseline: parse the whole
// document into an xmltree.Tree, then validate DTD conformance and
// constraints over it. Allocation grows with the document.
func BenchmarkValidateTree(b *testing.B) {
	spec := compileStream(b, streamBenchDTD, streamBenchXIC)
	for _, n := range streamBenchSizes() {
		doc := streamDoc(b, n)
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				tree, err := ParseDocument(bytes.NewReader(doc))
				if err != nil {
					b.Fatal(err)
				}
				if err := spec.Validate(context.Background(), tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidateStream is the single-pass path: same verdict, memory
// bounded by the constraint indexes.
func BenchmarkValidateStream(b *testing.B) {
	spec := compileStream(b, streamBenchDTD, streamBenchXIC)
	ctx := context.Background()
	for _, n := range streamBenchSizes() {
		doc := streamDoc(b, n)
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				rep, err := spec.ValidateStream(ctx, bytes.NewReader(doc))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal(rep.Err())
				}
			}
		})
	}
}

// measureValidation runs f once, sampling live heap throughout; f returns
// its own HeapAlloc snapshot taken while its results are still referenced,
// so the peak cannot miss the fully-built tree. The returned peak is
// relative to the post-GC baseline.
func measureValidation(f func() uint64) (peakBytes uint64, elapsed time.Duration) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	base := m0.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	var sampled uint64
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > sampled {
					sampled = m.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	final := f()
	elapsed = time.Since(start)
	close(stop)
	<-done
	peak := sampled
	if final > peak {
		peak = final
	}
	if peak <= base {
		return 0, elapsed
	}
	return peak - base, elapsed
}

func heapNow() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestWriteValidateBench records the tree-vs-stream memory comparison to
// the JSON file named by XIC_BENCH_OUT (skipped otherwise; CI sets it to
// BENCH_validate.json). It asserts the acceptance bound: peak allocation
// of streaming validation at least 5× below the tree-building baseline.
func TestWriteValidateBench(t *testing.T) {
	out := os.Getenv("XIC_BENCH_OUT")
	if out == "" {
		t.Skip("set XIC_BENCH_OUT=BENCH_validate.json to record the streaming-validation benchmark")
	}
	spec := compileStream(t, streamBenchDTD, streamBenchXIC)
	ctx := context.Background()
	type record struct {
		Nodes           int     `json:"nodes"`
		DocBytes        int     `json:"doc_bytes"`
		TreePeakBytes   uint64  `json:"tree_peak_bytes"`
		StreamPeakBytes uint64  `json:"stream_peak_bytes"`
		PeakRatio       float64 `json:"peak_ratio"`
		TreeMs          float64 `json:"tree_ms"`
		StreamMs        float64 `json:"stream_ms"`
	}
	var records []record
	for _, n := range streamBenchSizes() {
		doc := streamDoc(t, n)
		treePeak, treeDur := measureValidation(func() uint64 {
			tree, err := ParseDocument(bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(context.Background(), tree); err != nil {
				t.Fatal(err)
			}
			final := heapNow()
			runtime.KeepAlive(tree)
			return final
		})
		streamPeak, streamDur := measureValidation(func() uint64 {
			rep, err := spec.ValidateStream(ctx, bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatal(rep.Err())
			}
			final := heapNow()
			runtime.KeepAlive(rep)
			return final
		})
		if streamPeak == 0 {
			streamPeak = 1
		}
		ratio := float64(treePeak) / float64(streamPeak)
		t.Logf("nodes=%d doc=%dMB tree: peak=%dMB %v  stream: peak=%dMB %v  ratio=%.1fx",
			n, len(doc)>>20, treePeak>>20, treeDur, streamPeak>>20, streamDur, ratio)
		if ratio < 5 {
			t.Errorf("nodes=%d: stream peak %d not 5x below tree peak %d (ratio %.1f)", n, streamPeak, treePeak, ratio)
		}
		records = append(records, record{
			Nodes: n, DocBytes: len(doc),
			TreePeakBytes: treePeak, StreamPeakBytes: streamPeak, PeakRatio: ratio,
			TreeMs:   float64(treeDur.Microseconds()) / 1000,
			StreamMs: float64(streamDur.Microseconds()) / 1000,
		})
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- The ILP presolve + fast-path layer --------------------------------

// The corpus, options and timing discipline live in internal/solvebench —
// the single source of truth shared with cmd/xicbench — so the published
// ablation table and the CI-gated BENCH_solve.json can never drift apart.

// BenchmarkSolve measures the consistency decision per corpus case with
// the accelerated pipeline — presolve, root cuts, int64 fast tableau —
// on ("presolve", the historical series name) and off ("raw"): the ratio
// between the two series is the stack's wall-time win on the serving path.
func BenchmarkSolve(b *testing.B) {
	corpus, err := solvebench.Corpus(false)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"presolve", "raw"} {
		opt := solvebench.Options(mode == "presolve")
		for _, c := range corpus {
			b.Run(mode+"/"+c.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// solveRecord mirrors one entry of BENCH_solve.json (see cmd/benchdiff
// -kind solve).
type solveRecord struct {
	Case          string  `json:"case"`
	RawMs         float64 `json:"raw_ms"`
	PresolveMs    float64 `json:"presolve_ms"`
	Speedup       float64 `json:"speedup"`
	RawNodes      uint64  `json:"raw_nodes"`
	PresolveNodes uint64  `json:"presolve_nodes"`
	VarsFixed     uint64  `json:"vars_fixed"`
}

// TestWriteSolveBench records the accelerated-vs-raw solver comparison to
// the JSON file named by XIC_SOLVE_BENCH_OUT (skipped otherwise; CI sets
// it to BENCH_solve.json). The accelerated side is the serving pipeline —
// presolve, root cuts and the int64 fast tableau — and the raw side turns
// all of it off. It asserts the acceptance bound: total accelerated wall
// time at most 0.5× the raw solver (an aggregate ≥2x speedup) on the
// committed corpus, with identical verdicts case by case.
func TestWriteSolveBench(t *testing.T) {
	out := os.Getenv("XIC_SOLVE_BENCH_OUT")
	if out == "" {
		t.Skip("set XIC_SOLVE_BENCH_OUT=BENCH_solve.json to record the solver benchmark")
	}
	corpus, err := solvebench.Corpus(false)
	if err != nil {
		t.Fatal(err)
	}
	var records []solveRecord
	var totalRaw, totalPre time.Duration
	for _, c := range corpus {
		run := func(presolveOn bool) bool {
			verdict, err := c.Run(solvebench.Options(presolveOn))
			if err != nil {
				t.Fatal(err)
			}
			return verdict
		}
		if on, off := run(true), run(false); on != off {
			t.Fatalf("%s: verdict differs with presolve: on=%v off=%v", c.Name, on, off)
		}
		preStats1 := c.Checker.SolveStats()
		preDur := solvebench.BestOf(func() { run(true) })
		midStats := c.Checker.SolveStats()
		rawDur := solvebench.BestOf(func() { run(false) })
		endStats := c.Checker.SolveStats()
		totalPre += preDur
		totalRaw += rawDur
		rec := solveRecord{
			Case:       c.Name,
			RawMs:      float64(rawDur.Microseconds()) / 1000,
			PresolveMs: float64(preDur.Microseconds()) / 1000,
			// Per-solve counts from the counter deltas (BestOf runs the
			// decision solvebench.Runs times per side).
			PresolveNodes: (midStats.Nodes - preStats1.Nodes) / solvebench.Runs,
			RawNodes:      (endStats.Nodes - midStats.Nodes) / solvebench.Runs,
			VarsFixed:     (midStats.VarsFixed - preStats1.VarsFixed) / solvebench.Runs,
		}
		if rec.PresolveMs > 0 {
			rec.Speedup = rec.RawMs / rec.PresolveMs
		}
		records = append(records, rec)
		t.Logf("%-24s presolve %8.2fms (%d nodes, %d vars fixed)  raw %8.2fms (%d nodes)  speedup %.2fx",
			rec.Case, rec.PresolveMs, rec.PresolveNodes, rec.VarsFixed, rec.RawMs, rec.RawNodes, rec.Speedup)
	}
	ratio := float64(totalPre) / float64(totalRaw)
	t.Logf("TOTAL accelerated %v, raw %v, ratio %.3f", totalPre, totalRaw, ratio)
	if ratio > 0.5 {
		t.Errorf("accelerated wall time is %.2fx the raw solver on the corpus; the acceptance bound is 0.50x (≥2x aggregate speedup)", ratio)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
