package xic

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xic/internal/core"
)

func TestFingerprint(t *testing.T) {
	a := Fingerprint("dtd", "cons")
	if len(a) != 128 {
		t.Fatalf("fused fingerprint %q is not two hex SHA-256 halves", a)
	}
	if a != Fingerprint("dtd", "cons") {
		t.Error("fingerprint is not deterministic")
	}
	// The fused form is exactly the concatenation of the two section
	// fingerprints, so a cache can split a spec id into its schema half.
	if a != FingerprintDTD("dtd")+FingerprintConstraints("cons") {
		t.Error("fused fingerprint is not the concatenation of its sections")
	}
	if len(FingerprintDTD("dtd")) != 64 || len(FingerprintConstraints("cons")) != 64 {
		t.Error("section fingerprints are not hex SHA-256")
	}
	// Domain separation: identical bytes hash differently per section.
	if FingerprintDTD("x") == FingerprintConstraints("x") {
		t.Error("DTD and constraint hash spaces overlap")
	}
	// Section hashing keeps boundaries unambiguous.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("boundary shift collides")
	}
	if Fingerprint("dtd", "") == Fingerprint("", "dtd") {
		t.Error("section swap collides")
	}
}

// TestValidateHonorsContext checks the tree-mode validator aborts under an
// expired context with the same error contract as ValidateStream.
func TestValidateHonorsContext(t *testing.T) {
	spec, err := CompileStrings(`
<!ELEMENT db (rec*)>
<!ELEMENT rec EMPTY>
<!ATTLIST rec id CDATA #REQUIRED>`, "rec.id -> rec")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 20000; i++ {
		b.WriteString(`<rec id="r`)
		b.WriteString(strings.Repeat("x", i%7))
		b.WriteString("\"/>")
	}
	b.WriteString("</db>")
	doc, err := ParseDocumentString(b.String())
	if err != nil {
		t.Fatal(err)
	}

	if err := spec.Validate(context.Background(), doc); err == nil {
		// Ids repeat (only 7 distinct), so the key is genuinely violated —
		// background validation must say so, not pass silently.
		t.Fatal("duplicate ids must violate the key")
	} else if !errors.As(err, new(*ViolationError)) {
		t.Fatalf("want ViolationError, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = spec.Validate(ctx, doc)
	if err == nil {
		t.Fatal("cancelled validation returned nil")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled validation error %v must match ErrCanceled and context.Canceled", err)
	}

	// nil context means unbounded, mirroring ValidateStream.
	if err := spec.Validate(nil, doc); err == nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Error("nil-context validation lost the violation")
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{&ParseError{Input: "dtd", Line: 1, Msg: "x"}, 400},
		{&SpecError{Stage: "constraints", Err: errors.New("x")}, 422},
		{&SpecError{Stage: "solve", Err: errors.New("x")}, 500},
		{ErrUndecidable, 422},
		{ErrCanceled, 504},
		{ErrNothingToDiagnose, 409},
		{core.ErrNothingToDiagnose, 409},
		{errors.New("mystery"), 500},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestCompileStringsSemanticErrors checks semantic parser rejections surface
// as stage-tagged SpecErrors, not bare strings (the daemon maps them to 422).
func TestCompileStringsSemanticErrors(t *testing.T) {
	// "a" used both as element type and attribute name.
	_, err := CompileStrings(`<!ELEMENT r (a)> <!ELEMENT a EMPTY> <!ATTLIST r a CDATA #REQUIRED>`, "")
	var se *SpecError
	if !errors.As(err, &se) || se.Stage != "dtd" {
		t.Errorf("want SpecError{Stage: dtd}, got %v", err)
	}
	if got := HTTPStatus(err); got != 422 {
		t.Errorf("HTTPStatus = %d, want 422", got)
	}
	// Syntax errors still surface as ParseError.
	_, err = CompileStrings("<!ELEMENT", "")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Errorf("want ParseError, got %v", err)
	}
}

// TestSpecSolveStats: the solver counters accumulate across checks, are
// shared between WithOptions views of one engine, and report presolve
// activity on encoding-shaped systems.
func TestSpecSolveStats(t *testing.T) {
	spec, err := CompileStrings(`
<!ELEMENT db (emp*, dept*)>
<!ELEMENT emp EMPTY>
<!ELEMENT dept EMPTY>
<!ATTLIST emp id CDATA #REQUIRED works_in CDATA #REQUIRED>
<!ATTLIST dept id CDATA #REQUIRED>`, `
emp.id -> emp
emp.works_in => dept.id`)
	if err != nil {
		t.Fatal(err)
	}
	if st := spec.SolveStats(); st.Solves != 0 {
		t.Fatalf("fresh spec already has solves: %+v", st)
	}
	tuned := spec.WithOptions(Options{SkipWitness: true})
	for i := 0; i < 3; i++ {
		if _, err := tuned.Consistent(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := spec.SolveStats() // read through the *other* view: counters are shared
	if st.Solves != 3 {
		t.Errorf("Solves = %d, want 3", st.Solves)
	}
	if st.PresolveRows == 0 {
		t.Errorf("presolve saw no rows: %+v", st)
	}
	if st.PresolveDecided+st.FastPath+st.VarsFixed == 0 {
		t.Errorf("presolve idle on an encoding-shaped system: %+v", st)
	}
}
