package xic

import (
	"encoding/xml"
	"errors"
	"fmt"

	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/dtd"
	"xic/internal/ilp"
	"xic/internal/xmltree"
)

// ErrUndecidable is returned for constraint sets in the classes the paper
// proves undecidable (multi-attribute keys mixed with foreign keys or
// inclusion constraints, Theorem 3.1). Match it with errors.Is.
var ErrUndecidable = core.ErrUndecidable

// ErrCanceled is returned when a check is abandoned because its
// context.Context was cancelled or its deadline expired before the NP
// search finished. Errors returned by Spec methods match both ErrCanceled
// and the context's own error (context.Canceled or
// context.DeadlineExceeded) under errors.Is, so callers can use whichever
// sentinel fits their error handling.
var ErrCanceled = core.ErrCanceled

// ErrNothingToDiagnose is returned by Spec.Diagnose when the specification
// is consistent, so there is no inconsistency to explain. Match it with
// errors.Is; serving layers map it to a client-state status rather than an
// internal failure.
var ErrNothingToDiagnose = core.ErrNothingToDiagnose

// ErrInvalidOptions is returned when a check is handed nonsense solver
// options — a negative MaxNodes or a negative SolverParallelism — instead
// of silently substituting defaults. Errors from Spec methods wrap it in a
// *SpecError with Stage "options"; match it with errors.Is.
var ErrInvalidOptions = ilp.ErrInvalidOptions

// HTTPStatus maps the package's error taxonomy onto HTTP status codes, for
// serving frontends such as cmd/xicd. The values equal the net/http
// StatusXxx constants (the package avoids importing net/http for three
// integers):
//
//   - nil — 200 OK
//   - *ParseError (bad DTD/constraint/document syntax) — 400 Bad Request
//   - *SpecError in a compile stage (valid syntax, invalid specification),
//     *SpecError{Stage: "options"} (ErrInvalidOptions: nonsense solver
//     options) and ErrUndecidable — 422 Unprocessable Entity
//   - ErrNothingToDiagnose — 409 Conflict
//   - ErrCanceled (deadline or cancellation during a check) — 504 Gateway
//     Timeout
//   - *SpecError{Stage: "solve"} and anything unrecognised — 500 Internal
//     Server Error
func HTTPStatus(err error) int {
	if err == nil {
		return 200
	}
	switch {
	case errors.Is(err, ErrCanceled):
		return 504
	case errors.Is(err, ErrUndecidable):
		return 422
	case errors.Is(err, ErrNothingToDiagnose):
		return 409
	}
	var pe *ParseError
	if errors.As(err, &pe) {
		return 400
	}
	var se *SpecError
	if errors.As(err, &se) {
		if se.Stage == "solve" {
			return 500
		}
		return 422
	}
	return 500
}

// ParseError is a syntax error in one of the three textual inputs, with
// the position of the offending construct. It replaces the stringly
// errors of the pre-Spec API; match it with errors.As.
type ParseError struct {
	// Input names the input kind: "dtd", "constraints" or "document".
	Input string
	// Line is the 1-based line of the error within the input.
	Line int
	// Offset is the 0-based byte offset of the offending token or line
	// start within the input; -1 in the rare case that the underlying
	// parser reports only a line.
	Offset int
	// Msg describes the error without position prefixes.
	Msg string

	err error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s: line %d: %s", e.Input, e.Line, e.Msg)
}

// Unwrap returns the underlying parser error.
func (e *ParseError) Unwrap() error { return e.err }

// wrapDTDError lifts structured internal DTD parse errors into the public
// taxonomy, passing semantic errors (duplicate declarations, Check
// failures) through untouched.
func wrapDTDError(err error) error {
	if err == nil {
		return nil
	}
	var pe *dtd.ParseError
	if errors.As(err, &pe) {
		return &ParseError{Input: "dtd", Line: pe.Line, Offset: pe.Offset, Msg: pe.Msg, err: err}
	}
	return err
}

// wrapConstraintsError lifts structured constraint parse errors into the
// public taxonomy.
func wrapConstraintsError(err error) error {
	if err == nil {
		return nil
	}
	var pe *constraint.ParseError
	if errors.As(err, &pe) {
		return &ParseError{Input: "constraints", Line: pe.Line, Offset: pe.Offset, Msg: pe.Err.Error(), err: err}
	}
	return err
}

// wrapDocumentError lifts XML document errors into the public taxonomy.
// Structured xmltree errors carry the line and the byte offset threaded
// from xml.Decoder.InputOffset; bare decoder errors (which only know their
// line) are kept as a fallback with Offset -1.
func wrapDocumentError(err error) error {
	if err == nil {
		return nil
	}
	var de *xmltree.ParseError
	if errors.As(err, &de) {
		off := int(de.Offset)
		if int64(off) != de.Offset {
			off = -1 // document offset exceeds int on this platform
		}
		return &ParseError{Input: "document", Line: de.Line, Offset: off, Msg: de.Msg, err: err}
	}
	var se *xml.SyntaxError
	if errors.As(err, &se) {
		return &ParseError{Input: "document", Line: se.Line, Offset: -1, Msg: se.Msg, err: err}
	}
	return err
}

// SpecError reports why Compile rejected a specification, or that a check
// failed for an internal reason rather than a property of the input. Match
// it with errors.As; Unwrap exposes the underlying cause (for example a DTD
// validation error).
type SpecError struct {
	// Stage is the stage that failed: "dtd" (DTD validation), "constraints"
	// (constraint validation against the DTD), "encode" (building the
	// cardinality-encoding template), "options" (invalid solver options
	// handed to a check) or "solve" (an internal solver error during a
	// check).
	Stage string
	Err   error
}

func (e *SpecError) Error() string {
	if e.Stage == "solve" || e.Stage == "options" {
		return fmt.Sprintf("check: %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("compile: %s: %v", e.Stage, e.Err)
}

func (e *SpecError) Unwrap() error { return e.Err }

// wrapSolveError lifts internal-solver failures bubbling out of the
// decision procedures into the public taxonomy as a *SpecError with Stage
// "solve". These signal a solver bug (formerly a panic deep in the simplex)
// rather than anything about the caller's constraints, so they get their
// own stage instead of leaking as stringly internal errors.
func wrapSolveError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ilp.ErrInternal) {
		return &SpecError{Stage: "solve", Err: err}
	}
	if errors.Is(err, ilp.ErrInvalidOptions) {
		return &SpecError{Stage: "options", Err: err}
	}
	return err
}

// ViolationError reports the first constraint a document violates during
// dynamic validation.
type ViolationError struct {
	Violated Constraint
}

func (e *ViolationError) Error() string {
	return "xic: document violates constraint " + e.Violated.String()
}
