// Benchmarks for the two-stage compile/bind split, in the external test
// package so they can share internal/compilebench — the committed corpus
// behind BENCH_compile.json and the CI compile gate — with cmd/xicbench.
package xic_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"xic/internal/compilebench"
)

// BenchmarkCompileCold measures the one-shot path over the shipped specs/
// corpus: full per-DTD compilation plus the case's serving check, per
// request.
func BenchmarkCompileCold(b *testing.B) {
	corpus, err := compilebench.Corpus("specs")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, c := range corpus {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.Cold(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchemaBind measures the amortised path: the schema compiled
// once, each iteration paying only Schema.BindStrings plus the same check.
func BenchmarkSchemaBind(b *testing.B) {
	corpus, err := compilebench.Corpus("specs")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, c := range corpus {
		schema, err := c.CompileSchema()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.Warm(ctx, schema); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// compileRecord mirrors one entry of BENCH_compile.json (see cmd/benchdiff
// -kind compile).
type compileRecord struct {
	Case    string  `json:"case"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

// TestWriteCompileBench records the cold-Compile vs warm-Bind comparison to
// the JSON file named by XIC_COMPILE_BENCH_OUT (skipped otherwise; CI sets
// it to BENCH_compile.json). It asserts the acceptance bound of the
// two-stage API: Schema.Bind plus the serving check at least 5x faster than
// cold Compile plus the same check, in aggregate over the specs/ corpus.
func TestWriteCompileBench(t *testing.T) {
	out := os.Getenv("XIC_COMPILE_BENCH_OUT")
	if out == "" {
		t.Skip("set XIC_COMPILE_BENCH_OUT=BENCH_compile.json to record the compile benchmark")
	}
	corpus, err := compilebench.Corpus("specs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var records []compileRecord
	var totalCold, totalWarm time.Duration
	for _, c := range corpus {
		schema, err := c.CompileSchema()
		if err != nil {
			t.Fatal(err)
		}
		coldDur := compilebench.BestOf(func() {
			if err := c.Cold(ctx); err != nil {
				t.Fatal(err)
			}
		})
		warmDur := compilebench.BestOf(func() {
			if err := c.Warm(ctx, schema); err != nil {
				t.Fatal(err)
			}
		})
		totalCold += coldDur
		totalWarm += warmDur
		rec := compileRecord{
			Case:   c.Name,
			ColdMs: float64(coldDur.Microseconds()) / 1000,
			WarmMs: float64(warmDur.Microseconds()) / 1000,
		}
		if rec.WarmMs > 0 {
			rec.Speedup = rec.ColdMs / rec.WarmMs
		}
		records = append(records, rec)
		t.Logf("%-16s cold %8.3fms  warm %8.3fms  speedup %.1fx", rec.Case, rec.ColdMs, rec.WarmMs, rec.Speedup)
	}
	ratio := float64(totalCold) / float64(totalWarm)
	t.Logf("TOTAL cold %v, warm %v, speedup %.1fx", totalCold, totalWarm, ratio)
	if ratio < 5 {
		t.Errorf("warm Bind+check is only %.1fx faster than cold Compile+check on the corpus; the acceptance bound is 5x", ratio)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
