package xic

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xic/internal/ilp"
)

// TestWithSolveOptionsDerivation: WithSolveOptions layers tweaks on top of
// the current view without touching the receiver, and SolveOptions reads
// the effective configuration back.
func TestWithSolveOptionsDerivation(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "teacher.name -> teacher")
	if got := spec.SolveOptions(); got != (SolveOptions{}) {
		t.Fatalf("fresh Spec SolveOptions = %+v, want zero value", got)
	}

	tuned := spec.WithSolveOptions(
		WithMaxNodes(123),
		WithSolverParallelism(4),
		WithoutFastTableau(),
		WithSkipWitness(),
	)
	want := SolveOptions{MaxNodes: 123, SolverParallelism: 4, DisableFastTableau: true, SkipWitness: true}
	if got := tuned.SolveOptions(); got != want {
		t.Fatalf("tuned SolveOptions = %+v, want %+v", got, want)
	}
	// Layering: a second derivation keeps the first view's fields.
	layered := tuned.WithSolveOptions(WithoutPresolve())
	want.DisablePresolve = true
	if got := layered.SolveOptions(); got != want {
		t.Fatalf("layered SolveOptions = %+v, want %+v", got, want)
	}
	// The receiver is unchanged.
	if got := spec.SolveOptions(); got != (SolveOptions{}) {
		t.Fatalf("receiver mutated: %+v", got)
	}

	res, err := tuned.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Witness != nil {
		t.Error("WithSkipWitness view must not build witnesses")
	}
	res, err = spec.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Witness == nil {
		t.Error("original view must still build witnesses")
	}
}

// TestPerCallOpts: ConsistentOpts and ImpliesOpts apply one-shot tweaks
// without changing the Spec.
func TestPerCallOpts(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	res, err := spec.ConsistentOpts(context.Background(), WithSkipWitness(), WithSolverParallelism(2))
	if err != nil {
		t.Fatalf("ConsistentOpts: %v", err)
	}
	if res.Consistent {
		t.Error("Section 1 specification must stay inconsistent under per-call options")
	}
	imp, err := spec.ImpliesOpts(context.Background(), UnaryKey("teacher", "name"), WithSkipWitness())
	if err != nil {
		t.Fatalf("ImpliesOpts: %v", err)
	}
	if !imp.Implied {
		t.Error("compiled key must imply itself")
	}
	if got := spec.SolveOptions(); got != (SolveOptions{}) {
		t.Fatalf("per-call options leaked into the Spec: %+v", got)
	}
}

// TestSolveOptionsParallelVerdicts: verdicts are identical across
// parallelism settings on both a consistent and an inconsistent spec.
func TestSolveOptionsParallelVerdicts(t *testing.T) {
	for _, tc := range []struct {
		cons string
		want bool
	}{
		{sigma1, false},
		{"teacher.name -> teacher\nsubject.taught_by -> subject", true},
	} {
		var base *Result
		for _, par := range []int{1, 2, 8} {
			spec := mustSpec(t, teachersDTD, tc.cons).WithSolveOptions(WithSolverParallelism(par))
			res, err := spec.Consistent(context.Background())
			if err != nil {
				t.Fatalf("par %d: %v", par, err)
			}
			if res.Consistent != tc.want {
				t.Fatalf("par %d: Consistent = %v, want %v", par, res.Consistent, tc.want)
			}
			if res.Consistent {
				if res.Witness == nil {
					t.Fatalf("par %d: consistent verdict without witness", par)
				}
				if err := spec.Validate(context.Background(), res.Witness); err != nil {
					t.Fatalf("par %d: witness invalid: %v", par, err)
				}
			}
			if base == nil {
				base = res
			}
		}
	}
}

// TestInvalidOptionsTaxonomy: nonsense options reach the caller as a
// *SpecError{Stage: "options"} matching ErrInvalidOptions and map to 422,
// not a silent fallback to defaults.
func TestInvalidOptionsTaxonomy(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1).
		WithOptions(Options{Solver: ilp.Options{MaxNodes: -5}})
	_, err := spec.Consistent(context.Background())
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	var se *SpecError
	if !errors.As(err, &se) || se.Stage != "options" {
		t.Fatalf("err = %v, want *SpecError{Stage: options}", err)
	}
	if !strings.HasPrefix(se.Error(), "check: options:") {
		t.Errorf("Error() = %q, want check: options: prefix", se.Error())
	}
	if got := HTTPStatus(err); got != 422 {
		t.Errorf("HTTPStatus = %d, want 422", got)
	}

	// The functional constructors cannot produce invalid values:
	// WithSolverParallelism clamps below-1 to the automatic default.
	clamped := mustSpec(t, teachersDTD, sigma1).WithSolveOptions(WithSolverParallelism(-3))
	if got := clamped.SolveOptions().SolverParallelism; got != 0 {
		t.Fatalf("SolverParallelism = %d, want 0 after clamping", got)
	}
	if _, err := clamped.Consistent(context.Background()); err != nil {
		t.Fatalf("clamped view must solve cleanly: %v", err)
	}
}

// TestDeprecatedWrappers: the old entry points remain thin veneers over
// the SolveOptions machinery.
func TestDeprecatedWrappers(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	if got := spec.WithParallelism(3).SolveOptions().SolverParallelism; got != 3 {
		t.Fatalf("WithParallelism(3) → SolverParallelism %d, want 3", got)
	}
	if got := spec.WithParallelism(-1).SolveOptions().SolverParallelism; got != 0 {
		t.Fatalf("WithParallelism(-1) → SolverParallelism %d, want 0", got)
	}
	skipping := spec.WithOptions(Options{SkipWitness: true})
	if !skipping.SolveOptions().SkipWitness {
		t.Fatal("WithOptions(SkipWitness) must surface through SolveOptions")
	}
}
