package xic

import (
	"errors"
	"strings"
	"testing"
)

const teachersDTD = `
<!ELEMENT teachers (teacher+)>
<!ELEMENT teacher (teach, research)>
<!ELEMENT teach (subject, subject)>
<!ELEMENT research (#PCDATA)>
<!ELEMENT subject (#PCDATA)>
<!ATTLIST teacher name CDATA #REQUIRED>
<!ATTLIST subject taught_by CDATA #REQUIRED>
`

const sigma1 = `
teacher.name -> teacher
subject.taught_by -> subject
subject.taught_by => teacher.name
`

func TestQuickstartFlow(t *testing.T) {
	d, err := ParseDTD(teachersDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	sigma, err := ParseConstraints(sigma1)
	if err != nil {
		t.Fatalf("ParseConstraints: %v", err)
	}
	res, err := CheckConsistency(d, sigma, nil)
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if res.Consistent {
		t.Error("the paper's Section 1 specification must be inconsistent")
	}
}

func TestWitnessFlow(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	sigma, _ := ParseConstraints("teacher.name -> teacher")
	res, err := CheckConsistency(d, sigma, nil)
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if !res.Consistent || res.Witness == nil {
		t.Fatal("expected consistency with witness")
	}
	// The witness round-trips through XML text and revalidates.
	text := SerializeDocument(res.Witness)
	doc, err := ParseDocumentString(text)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	if err := ValidateDocument(doc, d, sigma); err != nil {
		t.Errorf("serialized witness fails dynamic validation: %v", err)
	}
}

func TestValidateDocumentViolation(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	sigma, _ := ParseConstraints("subject.taught_by -> subject")
	doc, err := ParseDocumentString(`
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="Joe">XML</subject>
      <subject taught_by="Joe">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
</teachers>`)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	err = ValidateDocument(doc, d, sigma)
	var viol *ViolationError
	if !errors.As(err, &viol) {
		t.Fatalf("expected ViolationError, got %v", err)
	}
	if !strings.Contains(viol.Error(), "taught_by") {
		t.Errorf("violation message %q should name the key", viol)
	}
}

func TestImplicationFlow(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	sigma, _ := ParseConstraints("teacher.name -> teacher")
	imp, err := CheckImplication(d, sigma, UnaryKey("teacher", "name"), nil)
	if err != nil {
		t.Fatalf("CheckImplication: %v", err)
	}
	if !imp.Implied {
		t.Error("Σ must imply its own member")
	}

	imp, err = CheckImplication(d, nil, UnaryKey("teacher", "name"), nil)
	if err != nil {
		t.Fatalf("CheckImplication: %v", err)
	}
	if imp.Implied {
		t.Error("empty Σ implies no key on a plural type")
	}
	if imp.Counterexample == nil {
		t.Error("expected counterexample document")
	}
}

func TestImpliesKeyFacade(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	ok, err := ImpliesKey(d, nil, UnaryKey("teachers", "x"))
	if err == nil {
		t.Fatalf("key over undeclared attribute accepted: %v", ok)
	}
}

func TestUndecidableSurface(t *testing.T) {
	d, _ := ParseDTD(`
<!ELEMENT r (a*, b*)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST a y CDATA #REQUIRED>
<!ATTLIST b x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
`)
	sigma, _ := ParseConstraints("a(x, y) => b(x, y)")
	_, err := CheckConsistency(d, sigma, nil)
	if !errors.Is(err, ErrUndecidable) {
		t.Errorf("multi-attribute foreign keys should surface ErrUndecidable, got %v", err)
	}
}

func TestCheckerFacade(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	c, err := NewChecker(d)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	sigma, _ := ParseConstraints(sigma1)
	res, err := c.Consistent(sigma, &Options{SkipWitness: true})
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("Σ1 must stay inconsistent through the Checker")
	}
}

func TestClassOfAndPrimaryKeys(t *testing.T) {
	sigma, _ := ParseConstraints(sigma1)
	if ClassOf(sigma).String() != "C^Unary_{K,FK}" {
		t.Errorf("ClassOf(Σ1) = %v", ClassOf(sigma))
	}
	if err := CheckPrimaryKeys(sigma); err != nil {
		t.Errorf("Σ1 is primary-key restricted: %v", err)
	}
}

func TestConstructors(t *testing.T) {
	k := UnaryKey("a", "x")
	if k.String() != "a.x -> a" {
		t.Errorf("UnaryKey string = %q", k)
	}
	ic := UnaryInclusion("a", "x", "b", "y")
	if ic.String() != "a.x <= b.y" {
		t.Errorf("UnaryInclusion string = %q", ic)
	}
	fk := UnaryForeignKey("a", "x", "b", "y")
	if fk.String() != "a.x => b.y" {
		t.Errorf("UnaryForeignKey string = %q", fk)
	}
}

func TestConsistentDTDFacade(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	if !ConsistentDTD(d) {
		t.Error("teachers DTD has valid documents")
	}
	d2, _ := ParseDTD("<!ELEMENT db (foo)>\n<!ELEMENT foo (foo)>")
	if ConsistentDTD(d2) {
		t.Error("db → foo → foo … has no finite documents")
	}
}
