package xic

import (
	"context"
	"errors"
	"strings"
	"testing"
)

const teachersDTD = `
<!ELEMENT teachers (teacher+)>
<!ELEMENT teacher (teach, research)>
<!ELEMENT teach (subject, subject)>
<!ELEMENT research (#PCDATA)>
<!ELEMENT subject (#PCDATA)>
<!ATTLIST teacher name CDATA #REQUIRED>
<!ATTLIST subject taught_by CDATA #REQUIRED>
`

const sigma1 = `
teacher.name -> teacher
subject.taught_by -> subject
subject.taught_by => teacher.name
`

// mustSpec compiles the Section 1 specification.
func mustSpec(t *testing.T, dtdSrc, consSrc string) *Spec {
	t.Helper()
	spec, err := CompileStrings(dtdSrc, consSrc)
	if err != nil {
		t.Fatalf("CompileStrings: %v", err)
	}
	return spec
}

func TestQuickstartFlow(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	res, err := spec.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("the paper's Section 1 specification must be inconsistent")
	}
}

func TestWitnessFlow(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "teacher.name -> teacher")
	res, err := spec.Consistent(context.Background())
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if !res.Consistent || res.Witness == nil {
		t.Fatal("expected consistency with witness")
	}
	// The witness round-trips through XML text and revalidates.
	text := SerializeDocument(res.Witness)
	doc, err := ParseDocumentString(text)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	if err := spec.Validate(context.Background(), doc); err != nil {
		t.Errorf("serialized witness fails dynamic validation: %v", err)
	}
}

func TestSpecValidateViolation(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "subject.taught_by -> subject")
	doc, err := ParseDocumentString(`
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="Joe">XML</subject>
      <subject taught_by="Joe">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
</teachers>`)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	err = spec.Validate(context.Background(), doc)
	var viol *ViolationError
	if !errors.As(err, &viol) {
		t.Fatalf("expected ViolationError, got %v", err)
	}
	if !strings.Contains(viol.Error(), "taught_by") {
		t.Errorf("violation message %q should name the key", viol)
	}
}

func TestImplicationFlow(t *testing.T) {
	ctx := context.Background()
	spec := mustSpec(t, teachersDTD, "teacher.name -> teacher")
	imp, err := spec.Implies(ctx, UnaryKey("teacher", "name"))
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if !imp.Implied {
		t.Error("Σ must imply its own member")
	}

	empty := mustSpec(t, teachersDTD, "")
	imp, err = empty.Implies(ctx, UnaryKey("teacher", "name"))
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if imp.Implied {
		t.Error("empty Σ implies no key on a plural type")
	}
	if imp.Counterexample == nil {
		t.Error("expected counterexample document")
	}
}

func TestSpecImpliesKey(t *testing.T) {
	spec := mustSpec(t, teachersDTD, "")
	ok, err := spec.ImpliesKey(UnaryKey("teachers", "x"))
	if err == nil {
		t.Fatalf("key over undeclared attribute accepted: %v", ok)
	}
}

func TestUndecidableSurface(t *testing.T) {
	d, _ := ParseDTD(`
<!ELEMENT r (a*, b*)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST a y CDATA #REQUIRED>
<!ATTLIST b x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
`)
	sigma, _ := ParseConstraints("a(x, y) => b(x, y)")
	spec, err := Compile(d, sigma...)
	if err != nil {
		t.Fatalf("undecidable classes must still compile (Validate works): %v", err)
	}
	_, err = spec.Consistent(context.Background())
	if !errors.Is(err, ErrUndecidable) {
		t.Errorf("multi-attribute foreign keys should surface ErrUndecidable, got %v", err)
	}
}

func TestClassOfAndPrimaryKeys(t *testing.T) {
	spec := mustSpec(t, teachersDTD, sigma1)
	if spec.Class().String() != "C^Unary_{K,FK}" {
		t.Errorf("Class() = %v", spec.Class())
	}
	if err := CheckPrimaryKeys(spec.Constraints()); err != nil {
		t.Errorf("Σ1 is primary-key restricted: %v", err)
	}
}

func TestConstructors(t *testing.T) {
	k := UnaryKey("a", "x")
	if k.String() != "a.x -> a" {
		t.Errorf("UnaryKey string = %q", k)
	}
	ic := UnaryInclusion("a", "x", "b", "y")
	if ic.String() != "a.x <= b.y" {
		t.Errorf("UnaryInclusion string = %q", ic)
	}
	fk := UnaryForeignKey("a", "x", "b", "y")
	if fk.String() != "a.x => b.y" {
		t.Errorf("UnaryForeignKey string = %q", fk)
	}
}

func TestConsistentDTDFacade(t *testing.T) {
	d, _ := ParseDTD(teachersDTD)
	if !ConsistentDTD(d) {
		t.Error("teachers DTD has valid documents")
	}
	d2, _ := ParseDTD("<!ELEMENT db (foo)>\n<!ELEMENT foo (foo)>")
	if ConsistentDTD(d2) {
		t.Error("db → foo → foo … has no finite documents")
	}
}

// TestDeprecatedFacade keeps the pre-Spec wrappers working: downstream
// code compiled against the old flat API must keep getting the same
// answers until it migrates.
func TestDeprecatedFacade(t *testing.T) {
	d, err := ParseDTD(teachersDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	sigma, err := ParseConstraints(sigma1)
	if err != nil {
		t.Fatalf("ParseConstraints: %v", err)
	}

	res, err := CheckConsistency(d, sigma, nil)
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if res.Consistent {
		t.Error("CheckConsistency must still report Σ1 inconsistent")
	}

	imp, err := CheckImplication(d, sigma[:1], UnaryKey("teacher", "name"), nil)
	if err != nil {
		t.Fatalf("CheckImplication: %v", err)
	}
	if !imp.Implied {
		t.Error("CheckImplication must still work")
	}

	c, err := NewChecker(d)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err = c.Consistent(sigma, &Options{SkipWitness: true})
	if err != nil {
		t.Fatalf("Checker.Consistent: %v", err)
	}
	if res.Consistent {
		t.Error("Σ1 must stay inconsistent through the Checker")
	}

	doc, err := ParseDocumentString(`
<teachers>
  <teacher name="Joe">
    <teach>
      <subject taught_by="a">XML</subject>
      <subject taught_by="b">DB</subject>
    </teach>
    <research>Web DB</research>
  </teacher>
</teachers>`)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	if err := ValidateDocument(doc, d, sigma[:2]); err != nil {
		t.Errorf("ValidateDocument: %v", err)
	}

	diag, err := Diagnose(d, sigma, nil)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(diag.Core) == 0 {
		t.Error("Diagnose must still produce a core")
	}
}
