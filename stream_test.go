package xic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xic/internal/constraint"
	"xic/internal/dtd"
	"xic/internal/ilp"
	"xic/internal/randgen"
	"xic/internal/xmltree"
)

// streamBenchDTD is the scalable workload shape shared by the equivalence
// tests and the streaming benchmarks: groups of fixed fan-out under a
// starred root, a key on the group and plain attributes below it, so the
// constraint index holds one entry per group while the tree holds every
// node.
const streamBenchDTD = `
<!ELEMENT lib (grp*)>
<!ELEMENT grp (item, item, item, item)>
<!ELEMENT item EMPTY>
<!ATTLIST grp id CDATA #REQUIRED>
<!ATTLIST item val CDATA #REQUIRED>
`

const streamBenchXIC = "grp.id -> grp"

func compileStream(t testing.TB, dtdSrc, consSrc string) *Spec {
	t.Helper()
	spec, err := CompileStrings(dtdSrc, consSrc)
	if err != nil {
		t.Fatalf("CompileStrings: %v", err)
	}
	return spec
}

// genDoc renders a pseudo-random conforming document of about n element
// nodes. pool 0 makes attribute values unique (keys hold).
func genDoc(t testing.TB, dtdSrc string, n, pool int, seed int64) []byte {
	t.Helper()
	d, err := dtd.Parse(dtdSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := randgen.WriteDocument(&buf, d, rand.New(rand.NewSource(seed)), randgen.DocSpec{
		TargetNodes: n, ValuePool: pool,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestValidateStreamMatchesValidateOnFixtures checks the shipped specs:
// the streaming verdict must equal Parse+Validate on the same bytes.
func TestValidateStreamMatchesValidateOnFixtures(t *testing.T) {
	read := func(name string) string {
		data, err := os.ReadFile(filepath.Join("specs", name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(data)
	}
	school := compileStream(t, read("school.dtd"), read("school.xic"))
	doc := read("school.xml")
	rep, err := school.ValidateStream(context.Background(), strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ValidateStream: %v", err)
	}
	tree, err := ParseDocumentString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if treeOK := school.Validate(context.Background(), tree) == nil; treeOK != rep.OK() {
		t.Fatalf("verdicts differ on school.xml: tree=%v stream=%v (%v)", treeOK, rep.OK(), rep.Violations)
	}
	if !rep.OK() {
		t.Errorf("specs/school.xml must stream-validate: %v", rep.Violations)
	}

	// The paper's Figure 1 document violates Σ1; both paths must say so.
	teachers, err := Compile(dtd.Teachers(), constraint.Sigma1()...)
	if err != nil {
		t.Fatal(err)
	}
	fig1 := xmltree.Serialize(xmltree.Figure1())
	rep, err = teachers.ValidateStream(context.Background(), strings.NewReader(fig1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("Figure 1 must violate Σ1 under streaming validation")
	}
	if verr := teachers.Validate(context.Background(), xmltree.Figure1()); verr == nil {
		t.Error("Figure 1 must violate Σ1 under tree validation")
	}
}

// TestValidateStreamMatchesValidateOnGenerated drives generated documents
// of several sizes and value pools through both paths; verdicts must agree
// even when collisions make the documents invalid.
func TestValidateStreamMatchesValidateOnGenerated(t *testing.T) {
	spec := compileStream(t, streamBenchDTD, streamBenchXIC+"\nitem.val <= grp.id\n")
	for _, n := range []int{50, 2000} {
		for _, pool := range []int{0, 5} {
			doc := genDoc(t, streamBenchDTD, n, pool, int64(n+pool))
			rep, err := spec.ValidateStream(context.Background(), bytes.NewReader(doc))
			if err != nil {
				t.Fatalf("n=%d pool=%d: ValidateStream: %v", n, pool, err)
			}
			tree, err := ParseDocument(bytes.NewReader(doc))
			if err != nil {
				t.Fatalf("n=%d pool=%d: ParseDocument: %v", n, pool, err)
			}
			treeOK := spec.Validate(context.Background(), tree) == nil
			if treeOK != rep.OK() {
				t.Errorf("n=%d pool=%d: verdicts differ: tree=%v stream=%v (%v)",
					n, pool, treeOK, rep.OK(), rep.Violations)
			}
		}
	}
}

// TestValidateStreamParseErrors pins the public error taxonomy for
// unparseable streamed documents: *ParseError with a real line and offset.
func TestValidateStreamParseErrors(t *testing.T) {
	spec := compileStream(t, streamBenchDTD, streamBenchXIC)
	cases := []struct {
		name, doc string
		wantLine  int
	}{
		{"syntax", "<lib>\n<grp id=\"1\"", 2},
		{"multiple roots", "<lib/>\n<lib/>", 2},
		{"attr collision", "<lib>\n<grp a:id=\"1\" b:id=\"2\"><item val=\"v\"/><item val=\"v\"/><item val=\"v\"/><item val=\"v\"/></grp></lib>", 2},
		{"chardata outside root", "<lib/>\nstray", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := spec.ValidateStream(context.Background(), strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("ValidateStream succeeded on unparseable input")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not *ParseError", err, err)
			}
			if pe.Input != "document" {
				t.Errorf("Input = %q", pe.Input)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("Line = %d, want %d (%v)", pe.Line, tc.wantLine, pe)
			}
			if pe.Offset < 0 {
				t.Errorf("Offset = %d, want >= 0", pe.Offset)
			}
		})
	}
}

// TestValidateStreamCanceled checks the cancellation taxonomy.
func TestValidateStreamCanceled(t *testing.T) {
	spec := compileStream(t, streamBenchDTD, streamBenchXIC)
	doc := genDoc(t, streamBenchDTD, 20000, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := spec.ValidateStream(ctx, bytes.NewReader(doc))
	if err == nil {
		t.Fatal("cancelled ValidateStream succeeded")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("error %v must match ErrCanceled and context.Canceled", err)
	}
}

// TestSolveErrorsBecomeSpecErrors pins the Spec-boundary mapping for the
// solver's internal-error path (the former simplex phase-1 panic): it must
// surface as a *SpecError with Stage "solve".
func TestSolveErrorsBecomeSpecErrors(t *testing.T) {
	err := wrapSolveError(fmt.Errorf("search failed: %w", ilp.ErrInternal))
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("wrapSolveError did not produce a *SpecError: %v", err)
	}
	if se.Stage != "solve" {
		t.Errorf("Stage = %q, want solve", se.Stage)
	}
	if !errors.Is(err, ilp.ErrInternal) {
		t.Error("wrapped error lost the ErrInternal sentinel")
	}
	if !strings.Contains(se.Error(), "solve") {
		t.Errorf("Error() = %q", se.Error())
	}
	// Ordinary errors pass through untouched.
	plain := errors.New("plain")
	if got := wrapSolveError(plain); got != plain {
		t.Errorf("wrapSolveError(plain) = %v", got)
	}
	if wrapSolveError(nil) != nil {
		t.Error("wrapSolveError(nil) != nil")
	}
}

// TestValidateStreamConcurrent shares one Spec across goroutines; run
// under -race this proves the streaming path doesn't serialize or trample
// shared state.
func TestValidateStreamConcurrent(t *testing.T) {
	spec := compileStream(t, streamBenchDTD, streamBenchXIC)
	doc := genDoc(t, streamBenchDTD, 3000, 0, 2)
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 5; i++ {
				rep, err := spec.ValidateStream(context.Background(), bytes.NewReader(doc))
				if err == nil && !rep.OK() {
					err = rep.Err()
				}
				if err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
