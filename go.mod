module xic

go 1.24
