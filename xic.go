// Package xic is a complete implementation of Fan & Libkin's "On XML
// Integrity Constraints in the Presence of DTDs" (PODS 2001; JACM 49(3),
// 2002): static validation of XML specifications that combine a DTD with
// keys, foreign keys and inclusion constraints.
//
// A specification is consistent when some finite XML document both conforms
// to the DTD and satisfies every constraint. Unlike the relational setting
// — where any key/foreign-key specification is trivially satisfiable — DTDs
// impose cardinality constraints that interact with keys and foreign keys,
// so consistency is a real question: the paper's own teacher example
// (Section 1) pairs an innocuous-looking DTD with three one-attribute
// constraints and has no satisfying document at all.
//
// The package decides, with the complexity the paper proves optimal:
//
//   - consistency of a DTD alone — linear time;
//   - consistency of keys (any arity) — linear time;
//   - implication of keys by keys — linear time;
//   - consistency of unary keys, foreign keys, inclusion constraints and
//     their negations — NP-complete, via the paper's encoding into linear
//     integer programming, solved exactly;
//   - implication of unary keys, inclusion constraints and foreign keys —
//     coNP-complete, by refutation;
//   - multi-attribute keys mixed with foreign keys — undecidable
//     (Theorem 3.1); such sets are rejected with ErrUndecidable.
//
// Positive answers come with verified witness documents; failed
// implications come with counterexample documents. Dynamic validation
// (checking one concrete document against a DTD and constraints) is also
// provided, in two modes: tree-based (Spec.Validate) and single-pass
// streaming (Spec.ValidateStream), whose memory is bounded by the
// constraint indexes rather than the document size.
//
// # The two-stage Schema/Spec engine
//
// The API is designed around the paper's fixed-DTD setting (Corollaries
// 4.11 and 5.5): one schema, many requests. It splits compilation into
// two stages mirroring the reduction, where the cardinality system Ψ(D)
// is determined by the DTD alone and constraint sets only append rows:
//
//	schema, err := xic.CompileDTD(d)   // heavy, once per DTD
//	specA, err := schema.Bind(sigmaA...) // cheap, per constraint set
//	specB, err := schema.Bind(sigmaB...)
//
// CompileDTD does all per-DTD work — DTD validation, Section 4.1
// simplification, the cardinality-encoding template, the conformance
// automata — and Bind attaches a constraint set (validation and
// classification only), sharing the compiled engine. Compile is their
// composition, the simple path when one DTD carries one constraint set;
// both return an immutable Spec whose methods are safe for concurrent use
// and take a context.Context that bounds the NP search:
//
//	spec, err := xic.Compile(d, sigma...)
//	if err != nil { … }
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := spec.Consistent(ctx)
//
// Batch entry points (Spec.ConsistentAll, Spec.ImpliesAll) fan many
// constraint sets out over a bounded worker pool, all sharing the compiled
// encoding, and settled implication verdicts are memoized on the Schema so
// repeated queries against a stable schema are pure lookups. Errors are
// structured: *ParseError carries line/offset positions, *SpecError names
// the failed compilation stage, and cancelled checks match both
// ErrCanceled and the context's error under errors.Is.
//
// # Quick start
//
//	d, _ := xic.ParseDTD(`
//	<!ELEMENT teachers (teacher+)>
//	<!ELEMENT teacher (teach, research)>
//	<!ELEMENT teach (subject, subject)>
//	<!ELEMENT research (#PCDATA)>
//	<!ELEMENT subject (#PCDATA)>
//	<!ATTLIST teacher name CDATA #REQUIRED>
//	<!ATTLIST subject taught_by CDATA #REQUIRED>`)
//	sigma, _ := xic.ParseConstraints(`
//	teacher.name -> teacher
//	subject.taught_by -> subject
//	subject.taught_by => teacher.name`)
//	spec, _ := xic.Compile(d, sigma...)
//	res, _ := spec.Consistent(context.Background())
//	fmt.Println(res.Consistent) // false: the paper's Section 1 example
package xic

import (
	"context"
	"io"

	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/doccheck"
	"xic/internal/docsession"
	"xic/internal/dtd"
	"xic/internal/xmltree"
)

// Core data types, aliased from the implementation packages.
type (
	// DTD is a document type definition D = (E, A, P, R, r): element types
	// with regular-expression content models and single-valued string
	// attributes (Definition 2.1 of the paper).
	DTD = dtd.DTD

	// Regex is a DTD content model.
	Regex = dtd.Regex

	// Tree is a finite XML document in the paper's tree model
	// (Definition 2.2).
	Tree = xmltree.Tree

	// Node is an element or text node of a Tree.
	Node = xmltree.Node

	// Constraint is an XML integrity constraint: Key, ForeignKey,
	// Inclusion, NotKey or NotInclusion.
	Constraint = constraint.Constraint

	// Key is τ[X] → τ: the attribute set X identifies τ elements.
	Key = constraint.Key

	// Inclusion is τ1[X] ⊆ τ2[Y] without a key requirement on Y.
	Inclusion = constraint.Inclusion

	// ForeignKey is τ1[X] ⊆ τ2[Y] combined with the key τ2[Y] → τ2.
	ForeignKey = constraint.ForeignKey

	// NotKey is the negation of a unary key.
	NotKey = constraint.NotKey

	// NotInclusion is the negation of a unary inclusion constraint.
	NotInclusion = constraint.NotInclusion

	// Class identifies the paper's constraint classes.
	Class = constraint.Class

	// Options tunes the NP decision procedures (solver budget, witness
	// size, witness skipping). New code should prefer SolveOptions with
	// Spec.WithSolveOptions, which covers the solver knobs in one flat
	// value; Options remains the carrier for witness-size limits and for
	// the deprecated package-level helpers.
	Options = core.Options

	// Result is a consistency verdict with an optional witness document.
	Result = core.Result

	// Implication is an implication verdict with an optional
	// counterexample document.
	Implication = core.Implication

	// Checker amortises per-DTD work across many checks against the same
	// DTD.
	//
	// Deprecated: use Compile and Spec, which add eager compilation,
	// context support and concurrency safety.
	Checker = core.Checker

	// Diagnosis explains an inconsistent specification with a minimal
	// inconsistent core.
	Diagnosis = core.Diagnosis

	// SolveStats is a snapshot of a Spec's cumulative ILP-oracle counters:
	// presolve decisions, fast-path hits, how much the presolve layer
	// shrank the systems that reached branch-and-bound, how the simplex
	// pivots split between the int64 fast tableau and the exact big.Rat
	// kernel, and work-stealing activity of the parallel search.
	SolveStats = core.SolveStats

	// Validator checks documents for DTD conformance.
	Validator = xmltree.Validator

	// Report is the outcome of one streaming validation pass
	// (Spec.ValidateStream): the violation list answers the validation
	// question and localizes each failure.
	Report = doccheck.Report

	// Violation is one way a streamed document fails its specification,
	// with an element path, source line and byte offset.
	Violation = doccheck.Violation

	// Session is a retained document with incrementally-maintained
	// validation state (Spec.OpenSession): edits are re-checked against
	// only the touched constraint indexes and content models, in O(edit)
	// rather than O(document).
	Session = docsession.Session

	// EditOp is one edit against a Session's document: InsertSubtree,
	// DeleteSubtree, SetAttr or SetText.
	EditOp = docsession.EditOp

	// OpKind names an EditOp's operation.
	OpKind = docsession.OpKind

	// ApplyResult is the outcome of one Session.Apply batch.
	ApplyResult = docsession.ApplyResult

	// RejectedEdit is the delta report of an edit the session refused:
	// the violations the edit would have introduced, plus a minimal
	// repair hint when one exists.
	RejectedEdit = docsession.RejectedEdit

	// RepairHint is a minimal counter-edit for a rejected op.
	RepairHint = docsession.RepairHint

	// InvalidDocumentError is returned by Spec.OpenSession when the
	// ingested document is well-formed but violates the specification.
	InvalidDocumentError = docsession.InvalidDocumentError
)

// EditOp kinds, aliased from the session engine.
const (
	OpInsertSubtree = docsession.OpInsertSubtree
	OpDeleteSubtree = docsession.OpDeleteSubtree
	OpSetAttr       = docsession.OpSetAttr
	OpSetText       = docsession.OpSetText
)

// SetAttr returns the edit replacing one attribute value of the element
// at path (xmltree.Tree.Path notation, e.g. teachers/teacher[1]).
func SetAttr(path, attr, value string) EditOp { return docsession.SetAttr(path, attr, value) }

// SetText returns the edit replacing the text content of the element at
// path; a whitespace-only value removes the text node.
func SetText(path, value string) EditOp { return docsession.SetText(path, value) }

// InsertSubtree returns the edit inserting the XML fragment as a new
// subtree under path at child slot index.
func InsertSubtree(path string, index int, xmlSrc string) EditOp {
	return docsession.InsertSubtree(path, index, xmlSrc)
}

// DeleteSubtree returns the edit deleting the subtree rooted at path.
func DeleteSubtree(path string) EditOp { return docsession.DeleteSubtree(path) }

// ParseDTD reads a DTD in XML DTD syntax (<!ELEMENT …>, <!ATTLIST …>,
// optional <!DOCTYPE root>). Syntax errors are *ParseError values carrying
// the line and byte offset of the offending token.
func ParseDTD(src string) (*DTD, error) {
	d, err := dtd.Parse(src)
	return d, wrapDTDError(err)
}

// ParseConstraints reads a constraint set, one constraint per line:
//
//	teacher.name -> teacher                 key
//	course(dept, no) -> course              multi-attribute key
//	subject.taught_by <= teacher.name       inclusion constraint
//	subject.taught_by => teacher.name       foreign key
//	not teacher.name -> teacher             negated unary key
//	not subject.taught_by <= teacher.name   negated unary inclusion
//
// Syntax errors are *ParseError values carrying the offending line.
func ParseConstraints(src string) ([]Constraint, error) {
	set, err := constraint.Parse(src)
	return set, wrapConstraintsError(err)
}

// ParseDocument reads an XML document into the tree model. Syntax errors
// are *ParseError values.
func ParseDocument(r io.Reader) (*Tree, error) {
	t, err := xmltree.Parse(r)
	return t, wrapDocumentError(err)
}

// ParseDocumentString is ParseDocument on a string.
func ParseDocumentString(src string) (*Tree, error) {
	t, err := xmltree.ParseString(src)
	return t, wrapDocumentError(err)
}

// SerializeDocument renders a tree as indented XML text.
func SerializeDocument(t *Tree) string { return xmltree.Serialize(t) }

// ConsistentDTD reports whether any finite document conforms to the DTD
// (Theorem 3.5(1)); linear time.
func ConsistentDTD(d *DTD) bool { return core.ConsistentDTD(d) }

// CheckConsistency decides whether some finite document conforms to the DTD
// and satisfies every constraint, returning a verified witness document on
// success. It is rebased onto the two-stage engine: a throwaway Schema is
// compiled and the set bound to it, with compile-stage errors unwrapped to
// their historical raw values.
//
// Deprecated: use Compile followed by Spec.Consistent, which amortises the
// per-DTD work and accepts a context.
func CheckConsistency(d *DTD, set []Constraint, opt *Options) (*Result, error) {
	spec, err := legacySpec(d, set)
	if err != nil {
		return nil, err
	}
	if opt != nil {
		spec = spec.WithOptions(*opt)
	}
	res, err := spec.Consistent(nil) // nil ctx is guarded in the engine
	return res, unwrapStage(err)
}

// CheckImplication decides whether every document conforming to the DTD and
// satisfying sigma also satisfies phi, returning a counterexample document
// when not. Like CheckConsistency, it runs on a throwaway two-stage Schema.
//
// Deprecated: use Compile followed by Spec.Implies.
func CheckImplication(d *DTD, sigma []Constraint, phi Constraint, opt *Options) (*Implication, error) {
	spec, err := legacySpec(d, sigma)
	if err != nil {
		return nil, err
	}
	if opt != nil {
		spec = spec.WithOptions(*opt)
	}
	imp, err := spec.Implies(nil, phi) // nil ctx is guarded in the engine
	return imp, unwrapStage(err)
}

// ImpliesKey is the linear-time implication test for keys by keys
// (Theorem 3.5(3)).
//
// Deprecated: use Compile followed by Spec.ImpliesKey.
func ImpliesKey(d *DTD, sigma []Constraint, phi Key) (bool, error) {
	return core.ImpliesKey(d, sigma, phi)
}

// NewChecker validates the DTD once for repeated checks against it.
//
// Deprecated: use Compile, which also builds the encoding template eagerly
// and returns a Spec with context-aware, concurrency-safe methods.
func NewChecker(d *DTD) (*Checker, error) { return core.NewChecker(d) }

// ValidateDocument checks one concrete document dynamically: it must
// conform to the DTD and satisfy every constraint. This is the validation
// mode the paper contrasts with static consistency checking.
//
// Deprecated: use Compile followed by Spec.Validate, which reuses the
// compiled conformance automata across documents.
func ValidateDocument(doc *Tree, d *DTD, set []Constraint) error {
	if err := xmltree.NewValidator(d).Validate(doc); err != nil {
		return err
	}
	if err := constraint.ValidateSet(d, set); err != nil {
		return err
	}
	if ok, violated := constraint.SatisfiedAll(doc, set); !ok {
		return &ViolationError{Violated: violated}
	}
	return nil
}

// ClassOf returns the smallest of the paper's constraint classes containing
// the set (C_K, C_{K,FK}, C^Unary_{K,FK}, C^Unary_{K,IC}, C^Unary_{K¬,IC},
// C^Unary_{K¬,IC¬}).
func ClassOf(set []Constraint) Class { return constraint.ClassOf(set) }

// CheckPrimaryKeys verifies the primary-key restriction of Section 4.2: at
// most one key per element type.
func CheckPrimaryKeys(set []Constraint) error {
	if err := constraint.CheckPrimaryKeyRestriction(set); err != nil {
		return &SpecError{Stage: "constraints", Err: err}
	}
	return nil
}

// Diagnose explains an inconsistent specification: it reports whether the
// DTD alone is unsatisfiable, and otherwise returns a minimal subset of the
// constraints that is still inconsistent with the DTD (removing any one
// member restores consistency).
//
// Deprecated: use Compile followed by Spec.Diagnose, which reuses the
// compiled encoding for all |Σ|+1 checks of the deletion filter.
func Diagnose(d *DTD, set []Constraint, opt *Options) (*Diagnosis, error) {
	return DiagnoseContext(nil, d, set, opt) // nil ctx is guarded in the engine
}

// DiagnoseContext is Diagnose under a context. Rebased, like the other
// legacy helpers, onto a throwaway two-stage Schema whose compiled encoding
// serves all |Σ|+1 checks of the deletion filter.
//
// Deprecated: use Compile followed by Spec.Diagnose.
func DiagnoseContext(ctx context.Context, d *DTD, set []Constraint, opt *Options) (*Diagnosis, error) {
	spec, err := legacySpec(d, set)
	if err != nil {
		return nil, err
	}
	if opt != nil {
		spec = spec.WithOptions(*opt)
	}
	diag, err := spec.Diagnose(ctx)
	return diag, unwrapStage(err)
}

// ConstraintsFromIDs derives the unary keys and foreign keys denoted by the
// DTD's ID and IDREF attribute declarations. It fails when IDREF targets
// are ambiguous (several element types declare ID attributes) — the
// unscopedness the paper criticises about DTD's built-in mechanism.
func ConstraintsFromIDs(d *DTD) ([]Constraint, error) {
	set, err := constraint.FromIDAttributes(d)
	if err != nil {
		return nil, &SpecError{Stage: "constraints", Err: err}
	}
	return set, nil
}

// UnaryKey builds the key τ.l → τ.
func UnaryKey(typ, attr string) Key { return constraint.UnaryKey(typ, attr) }

// UnaryInclusion builds the inclusion constraint τ1.l1 ⊆ τ2.l2.
func UnaryInclusion(child, childAttr, parent, parentAttr string) Inclusion {
	return constraint.UnaryInclusion(child, childAttr, parent, parentAttr)
}

// UnaryForeignKey builds the foreign key τ1.l1 ⊆ τ2.l2 with key τ2.l2 → τ2.
func UnaryForeignKey(child, childAttr, parent, parentAttr string) ForeignKey {
	return constraint.UnaryForeignKey(child, childAttr, parent, parentAttr)
}
