package xic

import "xic/internal/ilp"

// DefaultMaxNodes is the branch-and-bound node budget used when
// SolveOptions.MaxNodes is zero.
const DefaultMaxNodes = ilp.DefaultMaxNodes

// SolveOptions is the one knob set for the NP decision procedures,
// replacing the scattered Options / Spec.WithOptions / Spec.WithParallelism
// trio. A zero SolveOptions is the serving default: presolve on, int64 fast
// tableau on, serial branch-and-bound, witnesses built, DefaultMaxNodes
// budget. Values are applied to a Spec with Spec.WithSolveOptions or
// per call with Spec.ConsistentOpts / Spec.ImpliesOpts, normally through
// the functional constructors (WithMaxNodes, WithSolverParallelism,
// WithoutPresolve, WithoutFastTableau, WithSkipWitness).
type SolveOptions struct {
	// MaxNodes bounds the number of branch-and-bound nodes (LP solves)
	// per check. Zero means DefaultMaxNodes; negative values are rejected
	// with an error matching ErrInvalidOptions at check time.
	MaxNodes int

	// SolverParallelism is the solver-side concurrency knob. It bounds
	// both the branch-and-bound worker goroutines inside one check and the
	// worker pool of the batch entry points (ConsistentAll, ImpliesAll).
	// Zero means automatic: a serial search per check, GOMAXPROCS workers
	// for batches. Verdicts are identical at any parallelism — only the
	// witness document and the node count may differ, because parallel
	// workers explore the search tree in a different order.
	SolverParallelism int

	// DisablePresolve skips the presolve layer (bound propagation, GCD
	// tightening, Chvátal–Gomory root cuts) and runs branch-and-bound on
	// the raw system. For ablation benchmarks and cross-validation only.
	DisablePresolve bool

	// DisableFastTableau forces every LP onto the exact big.Rat simplex
	// kernel, skipping the overflow-checked int64 fast tableau. For
	// ablation benchmarks and cross-validation only.
	DisableFastTableau bool

	// SkipWitness returns bare verdicts without constructing witness or
	// counterexample documents.
	SkipWitness bool
}

// SolveOption is one functional tweak to a SolveOptions value.
type SolveOption func(*SolveOptions)

// WithMaxNodes bounds the branch-and-bound search to n nodes per check.
// n = 0 restores DefaultMaxNodes.
func WithMaxNodes(n int) SolveOption {
	return func(o *SolveOptions) { o.MaxNodes = n }
}

// WithSolverParallelism runs the branch-and-bound search and the batch
// entry points on at most n goroutines. n < 1 restores the automatic
// default (serial search, GOMAXPROCS batch workers).
func WithSolverParallelism(n int) SolveOption {
	return func(o *SolveOptions) {
		if n < 1 {
			n = 0
		}
		o.SolverParallelism = n
	}
}

// WithoutPresolve disables the presolve layer (ablation only).
func WithoutPresolve() SolveOption {
	return func(o *SolveOptions) { o.DisablePresolve = true }
}

// WithoutFastTableau forces the exact big.Rat kernel for every LP
// (ablation only).
func WithoutFastTableau() SolveOption {
	return func(o *SolveOptions) { o.DisableFastTableau = true }
}

// WithSkipWitness returns bare verdicts without witness documents.
func WithSkipWitness() SolveOption {
	return func(o *SolveOptions) { o.SkipWitness = true }
}
