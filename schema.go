package xic

import (
	"container/list"
	"errors"
	"fmt"
	"strings"
	"sync"

	"xic/internal/constraint"
	"xic/internal/core"
	"xic/internal/doccheck"
	"xic/internal/xmltree"
)

// Schema is the compiled form of a DTD alone — the heavy, constraint-free
// half of the two-stage API. In the paper's reduction the cardinality
// system Ψ(D) is determined by the DTD by itself (Section 4.1): constraint
// sets only append rows on top of it. CompileDTD therefore front-loads all
// per-DTD work — DTD validation, Section 4.1 simplification, the
// presolve-ready Ψ_{D_N} encoding template, and the conformance automata —
// and Schema.Bind attaches a constraint set for a small fraction of that
// cost, returning a full Spec.
//
// A Schema is immutable and safe for concurrent use: any number of
// goroutines may Bind against one Schema simultaneously, and every Spec
// bound from it shares the compiled engine without copying it. This is the
// serving shape for interactive workloads — constraint authoring,
// implication sweeps over one schema, per-tenant constraint sets on a
// shared DTD — where the schema is the stable, pre-analyzed artifact and
// constraint sets come and go.
//
// Repeated implication queries against one Schema are memoized: Spec.Implies
// consults a schema-wide cache keyed by the bound constraint set's
// fingerprint, the effective options and the queried constraint, so sweeps
// that revisit (Σ, φ) pairs are answered by lookup instead of a coNP
// refutation.
//
// xic:frozen
type Schema struct {
	d         *DTD
	eng       *core.Engine
	validator *xmltree.Validator
	fp        func() string // canonical DTD hash, computed at most once
	memo      *implMemo
}

// CompileDTD compiles a DTD into a Schema, eagerly paying every per-DTD
// cost: validation, Section 4.1 simplification, the cardinality-encoding
// template Ψ_{D_N}, and the content-model automata used by Validate and
// ValidateStream. Errors surface as *SpecError with stage "dtd" or
// "encode". The returned Schema serves any number of Bind calls
// concurrently.
func CompileDTD(d *DTD) (*Schema, error) {
	return compileDTD(d, true)
}

// compileDTD builds a Schema; eager additionally front-loads the
// conformance automata, which the serving path wants off the request path
// but the deprecated one-shot helpers (which never validate documents)
// should not pay for.
func compileDTD(d *DTD, eager bool) (*Schema, error) {
	if d == nil {
		return nil, &SpecError{Stage: "dtd", Err: errNilDTD}
	}
	eng, err := core.NewEngine(d)
	if err != nil {
		return nil, &SpecError{Stage: "dtd", Err: err}
	}
	if err := eng.Precompile(); err != nil {
		return nil, &SpecError{Stage: "encode", Err: err}
	}
	validator := xmltree.NewValidator(d)
	if eager {
		validator.CompileAll() // keep automaton construction off the serving path
	}
	return &Schema{
		d:         d,
		eng:       eng,
		validator: validator,
		fp:        sync.OnceValue(func() string { return FingerprintDTD(d.String()) }),
		memo:      newImplMemo(implMemoCap),
	}, nil
}

// CompileDTDString is CompileDTD over DTD source text. Syntax errors
// surface as *ParseError with line/offset positions; semantic errors the
// parser detects surface as *SpecError with stage "dtd", exactly as if
// CompileDTD itself had rejected them.
func CompileDTDString(dtdSrc string) (*Schema, error) {
	d, err := ParseDTD(dtdSrc)
	if err != nil {
		return nil, asStageError(err, "dtd")
	}
	return CompileDTD(d)
}

// DTD returns the compiled DTD.
func (sch *Schema) DTD() *DTD { return sch.d }

// Fingerprint returns the DTD-only fingerprint of the Schema: the
// FingerprintDTD hash of the DTD's canonical serialization. Unlike the
// source-keyed fingerprints used by serving caches, it is formatting
// independent — two textual spellings of one DTD share it.
func (sch *Schema) Fingerprint() string { return sch.fp() }

// ConsistentDTD reports whether any finite document at all conforms to the
// DTD (Theorem 3.5(1)); linear time.
func (sch *Schema) ConsistentDTD() bool { return sch.d.HasValidTree() }

// Bind attaches a constraint set to the compiled Schema, returning a Spec.
// This is the cheap stage of the two-stage API: it validates and
// classifies the constraints and wires up the streaming checker, while the
// simplified DTD, the encoding template and the conformance automata are
// shared with the Schema rather than rebuilt. Invalid constraints surface
// as a *SpecError with stage "constraints".
//
// Bind is safe to call from any number of goroutines. Each call returns an
// independent Spec with its own solver counters (SolveStats); all Specs
// bound from one Schema share its encoding template and implication cache.
func (sch *Schema) Bind(constraints ...Constraint) (*Spec, error) {
	if err := constraint.ValidateSet(sch.d, constraints); err != nil {
		return nil, &SpecError{Stage: "constraints", Err: err}
	}
	sigma := append([]Constraint(nil), constraints...)
	return &Spec{
		schema: sch,
		d:      sch.d,
		sigma:  sigma,
		class:  constraint.ClassOf(constraints),
		consFP: fingerprintConstraintSet(sigma),

		eng:       sch.eng.NewChecker(),
		validator: sch.validator,
		stream:    doccheck.New(sch.d, sch.validator, sigma),
	}, nil
}

// BindStrings is Bind over constraint source text in the line-oriented
// syntax of ParseConstraints. Syntax errors surface as *ParseError;
// semantic errors as *SpecError with stage "constraints".
func (sch *Schema) BindStrings(constraintsSrc string) (*Spec, error) {
	sigma, err := ParseConstraints(constraintsSrc)
	if err != nil {
		return nil, asStageError(err, "constraints")
	}
	return sch.Bind(sigma...)
}

// ImplCacheStats is a snapshot of a Schema's memoized-implication cache
// counters.
type ImplCacheStats struct {
	// Hits counts Implies calls answered by lookup.
	Hits uint64
	// Misses counts Implies calls that ran the decision procedure.
	Misses uint64
	// Entries is the current number of memoized (Σ, options, φ) verdicts.
	Entries int
}

// ImplCacheStats returns a snapshot of the schema-wide implication cache
// counters, aggregated over every Spec bound from this Schema.
func (sch *Schema) ImplCacheStats() ImplCacheStats { return sch.memo.stats() }

// fingerprintConstraintSet hashes the canonical rendering of a bound
// constraint set, so Specs bound from different spellings of one set (or
// constructed programmatically) still share implication-cache entries.
func fingerprintConstraintSet(sigma []Constraint) string {
	var b strings.Builder
	for _, c := range sigma {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return FingerprintConstraints(b.String())
}

// implMemoCap bounds each Schema's implication cache. Entries hold a
// verdict and at most one witness-sized counterexample tree, so a few
// thousand of them stay well under typical per-schema memory budgets while
// covering realistic implication sweeps (|Σ| candidates × |Σ| queries).
const implMemoCap = 4096

// implMemo is the Schema-wide memoized implication cache: an LRU from
// (bound-set fingerprint, options, φ) to the settled Implication. Only
// successful verdicts are stored — errors (cancellation, solver budget)
// are never cached — and counterexample trees are cloned on every hit so
// callers can mutate what they receive without poisoning the cache.
type implMemo struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*list.Element
	order *list.List // front = most recently used; values are *implMemoEntry
	hits  uint64
	miss  uint64
}

type implMemoEntry struct {
	key            string
	implied        bool
	counterexample *Tree
}

func newImplMemo(capacity int) *implMemo {
	return &implMemo{
		cap:   capacity,
		byKey: make(map[string]*list.Element),
		order: list.New(),
	}
}

// get returns a private copy of the memoized implication, if present.
func (m *implMemo) get(key string) (*Implication, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		m.miss++
		return nil, false
	}
	m.hits++
	m.order.MoveToFront(el)
	e := el.Value.(*implMemoEntry)
	imp := &Implication{Implied: e.implied}
	if e.counterexample != nil {
		imp.Counterexample = e.counterexample.Clone()
	}
	return imp, true
}

// put memoizes a settled implication, cloning the counterexample so later
// caller mutations cannot reach the cache.
func (m *implMemo) put(key string, imp *Implication) {
	e := &implMemoEntry{key: key, implied: imp.Implied}
	if imp.Counterexample != nil {
		e.counterexample = imp.Counterexample.Clone()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		// A concurrent miss settled the same key first; keep the fresher
		// answer and the LRU position.
		el.Value = e
		m.order.MoveToFront(el)
		return
	}
	m.byKey[key] = m.order.PushFront(e)
	for m.order.Len() > m.cap {
		back := m.order.Back()
		m.order.Remove(back)
		delete(m.byKey, back.Value.(*implMemoEntry).key)
	}
}

func (m *implMemo) stats() ImplCacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ImplCacheStats{Hits: m.hits, Misses: m.miss, Entries: m.order.Len()}
}

// legacySpec compiles through the two-stage path on behalf of the
// deprecated flat helpers, unwrapping the *SpecError envelope so their
// historical error values — raw DTD validation and constraint validation
// errors — keep flowing to old callers unchanged. The schema is throwaway,
// so the conformance automata (which the decision helpers never touch)
// are not front-loaded.
func legacySpec(d *DTD, set []Constraint) (*Spec, error) {
	sch, err := compileDTD(d, false)
	if err != nil {
		return nil, unwrapStage(err)
	}
	spec, err := sch.Bind(set...)
	if err != nil {
		return nil, unwrapStage(err)
	}
	return spec, nil
}

func unwrapStage(err error) error {
	var se *SpecError
	if errors.As(err, &se) && se.Err != nil {
		return se.Err
	}
	return err
}

// optionsKey renders the Options views that affect a memoized answer. The
// solver and witness budgets can turn a completed verdict into an error
// (never cached) but also bound witness shape, so the whole struct
// participates in the key.
func optionsKey(opt *Options) string {
	return fmt.Sprintf("%+v", *opt)
}
